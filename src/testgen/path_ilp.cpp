#include "testgen/path_ilp.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "graph/traversal.hpp"
#include "testgen/greedy_paths.hpp"

namespace mfd::testgen {

namespace {

// Small per-edge-use cost: prefers short paths and starves gratuitous cycles
// (which would otherwise be objective-neutral and burn lazy-cut rounds).
// Total distortion stays below one unit edge cost for every model size used
// here.
constexpr double kUseEpsilon = 1e-3;

struct VarLayout {
  // edge_use[r * edge_count + j] -> e_{j,r}; -1 when the edge is excluded.
  std::vector<ilp::VarId> edge_use;
  // node_on[r * node_count + i] -> n_{i,r} (unused for s, t)
  std::vector<ilp::VarId> node_on;
  // keep[j] -> s_j for free candidate edges, -1 elsewhere
  std::vector<ilp::VarId> keep;
};

struct BuiltModel {
  ilp::Model model;
  VarLayout layout;
};

// Free edges adjacent to the existing chip (occupied node at either end).
std::vector<char> neighborhood_candidates(const arch::Biochip& chip) {
  const graph::Graph& grid = chip.grid().graph();
  std::vector<char> node_occupied(
      static_cast<std::size_t>(grid.node_count()), 0);
  for (const arch::Device& d : chip.devices()) {
    node_occupied[static_cast<std::size_t>(d.node)] = 1;
  }
  for (const arch::Port& p : chip.ports()) {
    node_occupied[static_cast<std::size_t>(p.node)] = 1;
  }
  for (const arch::Valve& v : chip.valves()) {
    const graph::Edge& e = grid.edge(v.edge);
    node_occupied[static_cast<std::size_t>(e.u)] = 1;
    node_occupied[static_cast<std::size_t>(e.v)] = 1;
  }
  std::vector<char> allowed(static_cast<std::size_t>(grid.edge_count()), 0);
  for (graph::EdgeId j = 0; j < grid.edge_count(); ++j) {
    if (chip.edge_occupied(j)) {
      allowed[static_cast<std::size_t>(j)] = 1;
      continue;
    }
    const graph::Edge& e = grid.edge(j);
    if (node_occupied[static_cast<std::size_t>(e.u)] ||
        node_occupied[static_cast<std::size_t>(e.v)]) {
      allowed[static_cast<std::size_t>(j)] = 1;
    }
  }
  return allowed;
}

BuiltModel build_model(const arch::Biochip& chip, int num_paths,
                       graph::NodeId s, graph::NodeId t,
                       const std::vector<char>& edge_allowed,
                       const PathPlanOptions& options,
                       std::optional<int> cap_added_edges) {
  const graph::Graph& grid = chip.grid().graph();
  const int edge_count = grid.edge_count();
  const int node_count = grid.node_count();

  BuiltModel built;
  ilp::Model& m = built.model;
  VarLayout& vars = built.layout;

  vars.edge_use.assign(static_cast<std::size_t>(num_paths) *
                           static_cast<std::size_t>(edge_count),
                       -1);
  vars.node_on.assign(static_cast<std::size_t>(num_paths) *
                          static_cast<std::size_t>(node_count),
                      -1);
  vars.keep.assign(static_cast<std::size_t>(edge_count), -1);

  for (int r = 0; r < num_paths; ++r) {
    for (graph::EdgeId j = 0; j < edge_count; ++j) {
      if (!edge_allowed[static_cast<std::size_t>(j)]) continue;
      vars.edge_use[static_cast<std::size_t>(r * edge_count + j)] =
          m.add_binary("e_" + std::to_string(j) + "_" + std::to_string(r));
    }
    for (graph::NodeId i = 0; i < node_count; ++i) {
      if (i == s || i == t) continue;
      vars.node_on[static_cast<std::size_t>(r * node_count + i)] =
          m.add_binary("n_" + std::to_string(i) + "_" + std::to_string(r));
    }
  }
  for (graph::EdgeId j = 0; j < edge_count; ++j) {
    if (!chip.edge_occupied(j) && edge_allowed[static_cast<std::size_t>(j)]) {
      const ilp::VarId keep = m.add_binary("s_" + std::to_string(j));
      // Branch on structural keep decisions before individual path edges:
      // fixing which channels get added collapses most of the path symmetry.
      m.set_branch_priority(keep, 10);
      vars.keep[static_cast<std::size_t>(j)] = keep;
    }
  }

  auto edge_var = [&](int r, graph::EdgeId j) {
    return vars.edge_use[static_cast<std::size_t>(r * edge_count + j)];
  };

  // (1)-(2): path degree constraints per node and path.
  for (int r = 0; r < num_paths; ++r) {
    for (graph::NodeId i = 0; i < node_count; ++i) {
      ilp::LinearExpr degree;
      bool has_edges = false;
      for (graph::EdgeId j : grid.incident_edges(i)) {
        if (edge_var(r, j) < 0) continue;
        degree.add(edge_var(r, j), 1.0);
        has_edges = true;
      }
      if (i == s || i == t) {
        MFD_REQUIRE(has_edges,
                    "plan_dft_paths(): test port has no candidate edges");
        m.add_constraint(std::move(degree), ilp::Sense::kEqual, 1.0);
      } else if (has_edges) {
        degree.add(vars.node_on[static_cast<std::size_t>(r * node_count + i)],
                   -2.0);
        m.add_constraint(std::move(degree), ilp::Sense::kEqual, 0.0);
      }
    }
  }

  // (3): every original channel on at least one path.
  for (graph::EdgeId j = 0; j < edge_count; ++j) {
    if (!chip.edge_occupied(j)) continue;
    ilp::LinearExpr cover;
    for (int r = 0; r < num_paths; ++r) cover.add(edge_var(r, j), 1.0);
    m.add_constraint(std::move(cover), ilp::Sense::kGreaterEqual, 1.0);
  }

  // (4): link free-edge usage to the keep decision.
  for (graph::EdgeId j = 0; j < edge_count; ++j) {
    const ilp::VarId keep = vars.keep[static_cast<std::size_t>(j)];
    if (keep < 0) continue;
    for (int r = 0; r < num_paths; ++r) {
      ilp::LinearExpr link;
      link.add(keep, 1.0);
      link.add(edge_var(r, j), -1.0);
      m.add_constraint(std::move(link), ilp::Sense::kGreaterEqual, 0.0);
    }
  }

  // Symmetry breaking: paths are interchangeable, which would otherwise
  // multiply the branch-and-bound tree by |P|!. Order consecutive paths by
  // the rank of the edge they take out of the source node (each path uses
  // exactly one source edge by (2)).
  {
    const auto& source_edges = grid.incident_edges(s);
    for (int r = 0; r + 1 < num_paths; ++r) {
      ilp::LinearExpr order;
      for (std::size_t rank = 0; rank < source_edges.size(); ++rank) {
        const graph::EdgeId j = source_edges[rank];
        if (edge_var(r, j) < 0) continue;
        const double weight = static_cast<double>(rank);
        order.add(edge_var(r, j), weight);
        order.add(edge_var(r + 1, j), -weight);
      }
      m.add_constraint(std::move(order), ilp::Sense::kLessEqual, 0.0);
    }
  }

  // No-good cuts: forbid previously enumerated configurations (and their
  // supersets). An empty forbidden set would make the model infeasible,
  // which is correct: a chip needing zero added edges has exactly one
  // minimal configuration.
  for (const auto& forbidden : options.forbidden_added_sets) {
    ilp::LinearExpr cut;
    bool applicable = true;
    for (graph::EdgeId j : forbidden) {
      const ilp::VarId keep = vars.keep[static_cast<std::size_t>(j)];
      if (keep < 0) {
        applicable = false;  // edge outside candidate set: cannot recur
        break;
      }
      cut.add(keep, 1.0);
    }
    if (!applicable) continue;
    m.add_constraint(std::move(cut), ilp::Sense::kLessEqual,
                     static_cast<double>(forbidden.size()) - 1.0);
  }

  // Optional cardinality cap (lexicographic second stage under PSO bias).
  if (cap_added_edges.has_value()) {
    ilp::LinearExpr total;
    for (graph::EdgeId j = 0; j < edge_count; ++j) {
      const ilp::VarId keep = vars.keep[static_cast<std::size_t>(j)];
      if (keep >= 0) total.add(keep, 1.0);
    }
    m.add_constraint(std::move(total), ilp::Sense::kLessEqual,
                     static_cast<double>(*cap_added_edges));
  }

  // (5): objective.
  ilp::LinearExpr objective;
  const bool biased = !options.edge_weights.empty();
  if (biased) {
    MFD_REQUIRE(options.edge_weights.size() ==
                    static_cast<std::size_t>(edge_count),
                "plan_dft_paths(): one edge weight per grid edge required");
  }
  for (graph::EdgeId j = 0; j < edge_count; ++j) {
    const ilp::VarId keep = vars.keep[static_cast<std::size_t>(j)];
    if (keep < 0) continue;
    double cost = 1.0;
    if (biased) {
      cost += options.weight_strength *
              options.edge_weights[static_cast<std::size_t>(j)];
    }
    objective.add(keep, cost);
  }
  for (int r = 0; r < num_paths; ++r) {
    for (graph::EdgeId j = 0; j < edge_count; ++j) {
      if (edge_var(r, j) >= 0) objective.add(edge_var(r, j), kUseEpsilon);
    }
  }
  m.set_objective(std::move(objective));
  return built;
}

// Finds cycles in each path's selected edge set (components not containing
// the source) and returns subtour-elimination cuts for every path index.
std::vector<ilp::Constraint> loop_cuts(const arch::Biochip& chip,
                                       int num_paths, graph::NodeId s,
                                       const VarLayout& vars,
                                       const std::vector<double>& candidate) {
  const graph::Graph& grid = chip.grid().graph();
  const int edge_count = grid.edge_count();
  std::vector<ilp::Constraint> cuts;

  for (int r = 0; r < num_paths; ++r) {
    graph::EdgeMask selected(edge_count, false);
    bool any = false;
    for (graph::EdgeId j = 0; j < edge_count; ++j) {
      const ilp::VarId var =
          vars.edge_use[static_cast<std::size_t>(r * edge_count + j)];
      if (var >= 0 && candidate[static_cast<std::size_t>(var)] > 0.5) {
        selected.set(j, true);
        any = true;
      }
    }
    if (!any) continue;
    const std::vector<int> component =
        graph::connected_components(grid, selected);
    const int s_component = component[static_cast<std::size_t>(s)];

    // Group selected edges by component; any component other than the
    // source's is a cycle that must be eliminated (for every path index,
    // since no simple path may contain a full cycle).
    std::map<int, std::vector<graph::EdgeId>> cycles;
    for (graph::EdgeId j = 0; j < edge_count; ++j) {
      if (!selected.enabled(j)) continue;
      const int c = component[static_cast<std::size_t>(grid.edge(j).u)];
      if (c != s_component) cycles[c].push_back(j);
    }
    for (const auto& [component_id, cycle_edges] : cycles) {
      (void)component_id;
      for (int rr = 0; rr < num_paths; ++rr) {
        ilp::Constraint cut;
        bool complete = true;
        for (graph::EdgeId j : cycle_edges) {
          const ilp::VarId var =
              vars.edge_use[static_cast<std::size_t>(rr * edge_count + j)];
          if (var < 0) {
            complete = false;
            break;
          }
          cut.expr.add(var, 1.0);
        }
        if (!complete) continue;
        cut.sense = ilp::Sense::kLessEqual;
        cut.rhs = static_cast<double>(cycle_edges.size()) - 1.0;
        cuts.push_back(std::move(cut));
      }
    }
  }
  return cuts;
}

// Orders one path's selected edges into a source->meter walk.
std::vector<graph::EdgeId> extract_path(const arch::Biochip& chip,
                                        graph::NodeId s, graph::NodeId t,
                                        const graph::EdgeMask& selected) {
  const graph::Graph& grid = chip.grid().graph();
  std::vector<graph::EdgeId> ordered;
  std::vector<char> used(static_cast<std::size_t>(grid.edge_count()), 0);
  graph::NodeId at = s;
  while (at != t) {
    graph::EdgeId next = graph::kInvalidEdge;
    for (graph::EdgeId j : grid.incident_edges(at)) {
      if (selected.enabled(j) && !used[static_cast<std::size_t>(j)]) {
        next = j;
        break;
      }
    }
    MFD_ASSERT(next != graph::kInvalidEdge,
               "extract_path(): selected edges do not form an s-t path");
    used[static_cast<std::size_t>(next)] = 1;
    ordered.push_back(next);
    at = grid.edge(next).other(at);
    MFD_ASSERT(ordered.size() <= static_cast<std::size_t>(grid.edge_count()),
               "extract_path(): walk exceeded edge count");
  }
  return ordered;
}

// The ILP pins down the union multiset of path edges (the per-use epsilon
// cost makes the total use count part of the objective), but how that union
// splits into the |P| individual paths is an arbitrary choice among symmetric
// optima — and different LP backends (or warm vs cold starts) land on
// different vertices under degeneracy. Re-partition the union into the
// lexicographically smallest list of simple s->t paths, so equal unions give
// bit-identical plans no matter which incumbent the search happened to find.
// Keeps the original partition when the bounded search does not finish.
void canonicalize_paths(const arch::Biochip& chip, graph::NodeId s,
                        graph::NodeId t,
                        std::vector<std::vector<graph::EdgeId>>& paths) {
  if (paths.size() < 2) return;
  const graph::Graph& grid = chip.grid().graph();
  std::vector<int> remaining(static_cast<std::size_t>(grid.edge_count()), 0);
  std::size_t left = 0;
  for (const auto& path : paths) {
    for (graph::EdgeId j : path) ++remaining[static_cast<std::size_t>(j)];
    left += path.size();
  }
  std::vector<std::vector<graph::EdgeId>> incident(
      static_cast<std::size_t>(grid.node_count()));
  for (graph::NodeId i = 0; i < grid.node_count(); ++i) {
    auto& edges = incident[static_cast<std::size_t>(i)];
    for (graph::EdgeId j : grid.incident_edges(i)) edges.push_back(j);
    std::sort(edges.begin(), edges.end());
  }

  constexpr long kStepBudget = 2'000'000;
  long steps = 0;
  std::vector<std::vector<graph::EdgeId>> result(paths.size());
  // Per-path visited sets: deeper paths must not clobber the state a
  // backtracking shallower path will restore.
  std::vector<std::vector<char>> on_path(
      paths.size(),
      std::vector<char>(static_cast<std::size_t>(grid.node_count()), 0));

  std::function<bool(std::size_t)> assemble;
  std::function<bool(std::size_t, graph::NodeId)> extend =
      [&](std::size_t index, graph::NodeId at) -> bool {
    if (++steps > kStepBudget) return false;
    // A simple path reaching the meter must end there.
    if (at == t && !result[index].empty()) return assemble(index + 1);
    for (graph::EdgeId j : incident[static_cast<std::size_t>(at)]) {
      if (remaining[static_cast<std::size_t>(j)] == 0) continue;
      const graph::NodeId next = grid.edge(j).other(at);
      if (on_path[index][static_cast<std::size_t>(next)]) continue;
      --remaining[static_cast<std::size_t>(j)];
      --left;
      on_path[index][static_cast<std::size_t>(next)] = 1;
      result[index].push_back(j);
      if (extend(index, next)) return true;
      result[index].pop_back();
      on_path[index][static_cast<std::size_t>(next)] = 0;
      ++remaining[static_cast<std::size_t>(j)];
      ++left;
    }
    return false;
  };
  assemble = [&](std::size_t index) -> bool {
    if (index == result.size()) return left == 0;
    std::fill(on_path[index].begin(), on_path[index].end(), 0);
    on_path[index][static_cast<std::size_t>(s)] = 1;
    result[index].clear();
    return extend(index, s);
  };
  if (assemble(0)) paths = std::move(result);
}

// True when the exact search inside a solve was cut short rather than
// finishing with a definite answer.
bool solve_interrupted(ilp::SolveStatus status) {
  return status == ilp::SolveStatus::kStopped ||
         status == ilp::SolveStatus::kTimeLimit ||
         status == ilp::SolveStatus::kNodeLimit;
}

// One full |P| = initial..max sweep over a fixed candidate edge set.
// `interrupted` is set (never cleared) when any solve was cut short.
bool plan_with_candidates(const arch::Biochip& chip,
                          const PathPlanOptions& options,
                          const std::vector<char>& edge_allowed,
                          PathPlan& plan, bool& interrupted) {
  const graph::NodeId s = chip.port(plan.source).node;
  const graph::NodeId t = chip.port(plan.meter).node;
  const graph::Graph& grid = chip.grid().graph();

  for (int num_paths = options.initial_paths; num_paths <= options.max_paths;
       ++num_paths) {
    if (stop_requested(options.control)) return false;
    BuiltModel built =
        build_model(chip, num_paths, s, t, edge_allowed, options, std::nullopt);

    ilp::SolverOptions solver_options;
    solver_options.time_limit_seconds = options.time_limit_seconds;
    solver_options.absolute_gap = options.unbiased_gap;
    solver_options.control = options.control;
    solver_options.lp.use_dense = options.use_dense_lp;
    const VarLayout& vars = built.layout;
    // Record every lazy cut discovered, so the second stage can replay them
    // into the same model instead of rediscovering them.
    std::vector<ilp::Constraint> recorded_cuts;
    const auto lazy = [&](const std::vector<double>& candidate) {
      std::vector<ilp::Constraint> cuts =
          loop_cuts(chip, num_paths, s, vars, candidate);
      recorded_cuts.insert(recorded_cuts.end(), cuts.begin(), cuts.end());
      return cuts;
    };
    ilp::Solution solution = ilp::solve_ilp(built.model, solver_options, lazy);
    plan.ilp_nodes += solution.nodes_explored;
    plan.lazy_cuts += solution.lazy_constraints_added;
    plan.stats += solution.stats;
    if (solve_interrupted(solution.status)) interrupted = true;
    if (!solution.has_solution()) continue;  // infeasible: grow |P|

    // Optional lexicographic second stage: keep the minimum channel count
    // and re-optimize the PSO bias over edge selection. The stage mutates
    // the *same* model — replaying the stage-1 lazy cuts and appending the
    // cardinality cap — and warm-starts from the stage-1 incumbent basis
    // (the new rows' slacks extend it inside the engine).
    if (!options.edge_weights.empty()) {
      int min_added = 0;
      for (graph::EdgeId j = 0; j < grid.edge_count(); ++j) {
        const ilp::VarId keep = vars.keep[static_cast<std::size_t>(j)];
        if (keep >= 0 && solution.binary_value(keep)) ++min_added;
      }
      for (const ilp::Constraint& cut : recorded_cuts) {
        built.model.add_constraint(cut.expr, cut.sense, cut.rhs);
      }
      ilp::LinearExpr total;
      for (graph::EdgeId j = 0; j < grid.edge_count(); ++j) {
        const ilp::VarId keep = vars.keep[static_cast<std::size_t>(j)];
        if (keep >= 0) total.add(keep, 1.0);
      }
      built.model.add_constraint(std::move(total), ilp::Sense::kLessEqual,
                                 static_cast<double>(min_added));
      ilp::SolverOptions biased_options = solver_options;
      biased_options.absolute_gap = options.biased_gap;
      if (!solution.basis.empty()) {
        biased_options.warm_start = &solution.basis;
      }
      ilp::Solution biased_solution =
          ilp::solve_ilp(built.model, biased_options, lazy);
      plan.ilp_nodes += biased_solution.nodes_explored;
      plan.lazy_cuts += biased_solution.lazy_constraints_added;
      plan.stats += biased_solution.stats;
      if (solve_interrupted(biased_solution.status)) interrupted = true;
      if (biased_solution.has_solution()) {
        solution = std::move(biased_solution);
      }
    }

    const VarLayout& final_vars = built.layout;
    plan.feasible = true;
    plan.paths_used = num_paths;
    for (int r = 0; r < num_paths; ++r) {
      graph::EdgeMask selected(grid.edge_count(), false);
      for (graph::EdgeId j = 0; j < grid.edge_count(); ++j) {
        const ilp::VarId var = final_vars.edge_use[static_cast<std::size_t>(
            r * grid.edge_count() + j)];
        if (var >= 0 && solution.binary_value(var)) selected.set(j, true);
      }
      plan.paths.push_back(extract_path(chip, s, t, selected));
    }
    canonicalize_paths(chip, s, t, plan.paths);
    for (graph::EdgeId j = 0; j < grid.edge_count(); ++j) {
      const ilp::VarId keep = final_vars.keep[static_cast<std::size_t>(j)];
      if (keep < 0 || !solution.binary_value(keep)) continue;
      // Keep only edges some path actually uses (s_j is free to be 1).
      bool used = false;
      for (const auto& path : plan.paths) {
        if (std::find(path.begin(), path.end(), j) != path.end()) {
          used = true;
          break;
        }
      }
      if (used) plan.added_edges.push_back(j);
    }
    std::sort(plan.added_edges.begin(), plan.added_edges.end());
    return true;
  }
  return false;
}

}  // namespace

std::pair<arch::PortId, arch::PortId> select_test_ports(
    const arch::Biochip& chip) {
  MFD_REQUIRE(chip.port_count() >= 2,
              "select_test_ports(): chip needs at least two ports");
  arch::PortId best_a = 0;
  arch::PortId best_b = 1;
  int best_distance = -1;
  for (arch::PortId a = 0; a < chip.port_count(); ++a) {
    for (arch::PortId b = a + 1; b < chip.port_count(); ++b) {
      const int d = chip.grid().manhattan_distance(chip.port(a).node,
                                                   chip.port(b).node);
      if (d > best_distance) {
        best_distance = d;
        best_a = a;
        best_b = b;
      }
    }
  }
  return {best_a, best_b};
}

PathPlan plan_dft_paths(const arch::Biochip& chip,
                        const PathPlanOptions& options) {
  MFD_REQUIRE(options.initial_paths >= 1, "plan_dft_paths(): |P| must be >= 1");
  PathPlan plan;
  const auto [source, meter] = select_test_ports(chip);
  plan.source = source;
  plan.meter = meter;

  bool interrupted = false;
  const int free_edges =
      chip.grid().graph().edge_count() - chip.valve_count();
  const bool restrict =
      options.restrict_to_neighborhood ==
          PathPlanOptions::Neighborhood::kAlways ||
      (options.restrict_to_neighborhood ==
           PathPlanOptions::Neighborhood::kAuto &&
       free_edges > options.auto_restrict_threshold);
  if (restrict) {
    if (plan_with_candidates(chip, options, neighborhood_candidates(chip),
                             plan, interrupted)) {
      return plan;
    }
  }
  // Unrestricted retry (or first attempt when restriction is disabled).
  if (!stop_requested(options.control)) {
    std::vector<char> all(
        static_cast<std::size_t>(chip.grid().graph().edge_count()), 1);
    plan_with_candidates(chip, options, all, plan, interrupted);
  }
  if (plan.feasible) return plan;

  if (stop_requested(options.control)) interrupted = true;
  if (!interrupted) return plan;  // genuinely infeasible: no fallback

  // The exact search was cut short before finding any plan. Degrade
  // gracefully: report how it was interrupted and, when allowed, hand the
  // instance to the deterministic greedy planner.
  const StopReason reason =
      options.control != nullptr ? options.control->check() : StopReason::kNone;
  const Outcome outcome = reason != StopReason::kNone
                              ? outcome_of(reason)
                              : Outcome::kDeadlineExceeded;
  if (options.heuristic_fallback && greedy_dft_paths(chip, plan)) {
    plan.method = PathPlan::Method::kGreedyFallback;
    plan.status = Status::Fail(outcome, "plan_dft_paths",
                               "exact search interrupted; plan built by the "
                               "greedy fallback");
  } else {
    plan.status = Status::Fail(outcome, "plan_dft_paths",
                               "exact search interrupted before any plan "
                               "was found");
  }
  return plan;
}

arch::Biochip apply_plan(const arch::Biochip& chip, const PathPlan& plan) {
  MFD_REQUIRE(plan.feasible, "apply_plan(): plan is not feasible");
  arch::Biochip augmented = chip;
  for (graph::EdgeId j : plan.added_edges) {
    augmented.add_dft_channel(j);
  }
  return augmented;
}

}  // namespace mfd::testgen
