#include "testgen/vector_gen.hpp"

#include <algorithm>

#include "graph/maxflow.hpp"
#include "graph/traversal.hpp"
#include "sim/batch_fault.hpp"

namespace mfd::testgen {

namespace {

using arch::Biochip;
using arch::ControlId;
using arch::PortId;
using arch::ValveId;
using sim::BatchFaultSimulator;
using sim::Fault;
using sim::FaultKind;
using sim::TestVector;
using sim::VectorKind;

// Capacity for valves whose stuck-at-1 fault is already covered: high enough
// that minimum cuts prefer uncovered valves, low enough to stay numerically
// benign.
constexpr double kCoveredCapacity = 64.0;

std::vector<ControlId> controls_of_edges(
    const Biochip& chip, const std::vector<graph::EdgeId>& edges) {
  std::vector<ControlId> controls;
  for (graph::EdgeId e : edges) {
    const ValveId v = chip.valve_on_edge(e);
    MFD_ASSERT(v != arch::kInvalidValve, "path edge without valve");
    controls.push_back(chip.valve(v).control);
  }
  std::sort(controls.begin(), controls.end());
  controls.erase(std::unique(controls.begin(), controls.end()),
                 controls.end());
  return controls;
}

class VectorSearch {
 public:
  VectorSearch(const Biochip& chip,
               std::vector<std::pair<PortId, PortId>> pairs,
               const VectorGenOptions& options)
      : chip_(chip),
        batch_(chip),
        pairs_(std::move(pairs)),
        options_(options),
        rng_(options.seed),
        channel_mask_(chip.channel_mask()) {}

  std::optional<TestSuite> run() {
    faults_ = sim::all_faults(chip_);
    covered_.assign(faults_.size(), 0);

    seed_with_plan_paths();
    if (options_.use_bulk_cuts) bulk_cut_stage();
    if (!per_fault_stage()) return std::nullopt;

    TestSuite suite;
    suite.vectors = std::move(vectors_);
    suite.seeded_from_fallback =
        options_.plan != nullptr && options_.plan->feasible &&
        options_.plan->method == PathPlan::Method::kGreedyFallback;
    suite.coverage =
        sim::evaluate_coverage(chip_, suite.vectors,
                               sim::FaultUniverse::kStuckAt, options_.control);
    // A stop during the recheck leaves the coverage report partial — return
    // the documented "stopped" result instead of failing the recheck.
    if (stop_requested(options_.control)) return std::nullopt;
    MFD_REQUIRE(suite.coverage.complete(),
                "vector generation claimed full coverage but recheck failed");
    return suite;
  }

 private:
  TestVector make_path_vector(const std::vector<graph::EdgeId>& path_edges,
                              PortId source, PortId meter) const {
    TestVector vec;
    vec.kind = VectorKind::kPath;
    vec.source = source;
    vec.meter = meter;
    vec.control_open =
        sim::controls_closed_except(chip_, controls_of_edges(chip_,
                                                             path_edges));
    vec.expected_pressure = true;
    return vec;
  }

  // Cut vector: everything closed except the controls of the given open
  // edges (typically a broken test path).
  TestVector make_cut_vector(const std::vector<graph::EdgeId>& open_edges,
                             PortId source, PortId meter) const {
    TestVector vec;
    vec.kind = VectorKind::kCut;
    vec.source = source;
    vec.meter = meter;
    vec.control_open =
        sim::controls_closed_except(chip_, controls_of_edges(chip_,
                                                             open_edges));
    vec.expected_pressure = false;
    return vec;
  }

  // Marks every still-uncovered fault the *loaded* vector detects; returns
  // the count. batch_ must hold `vec` (one O(V+E) load classifies all
  // faults, so absorption is O(V+E+F) instead of one BFS pair per fault).
  int absorb_loaded(const TestVector& vec) {
    int newly = 0;
    for (std::size_t f = 0; f < faults_.size(); ++f) {
      if (covered_[f]) continue;
      if (batch_.detects(faults_[f])) {
        covered_[f] = 1;
        ++newly;
      }
    }
    if (newly > 0) vectors_.push_back(vec);
    return newly;
  }

  void seed_with_plan_paths() {
    if (options_.plan == nullptr || !options_.plan->feasible) return;
    for (const auto& path : options_.plan->paths) {
      const TestVector vec = make_path_vector(path, options_.plan->source,
                                              options_.plan->meter);
      batch_.load(vec);
      if (batch_.vector_consistent()) absorb_loaded(vec);
    }
  }

  void bulk_cut_stage() {
    const graph::Graph& grid = chip_.grid().graph();
    for (const auto& [source, meter] : pairs_) {
      const graph::NodeId s = chip_.port(source).node;
      const graph::NodeId t = chip_.port(meter).node;
      while (true) {
        if (stop_requested(options_.control)) return;
        std::vector<double> capacity(
            static_cast<std::size_t>(grid.edge_count()), 0.0);
        bool any_uncovered = false;
        for (ValveId v = 0; v < chip_.valve_count(); ++v) {
          const std::size_t fault_index = static_cast<std::size_t>(v) * 2 + 1;
          const bool uncovered = covered_[fault_index] == 0;
          any_uncovered = any_uncovered || uncovered;
          capacity[static_cast<std::size_t>(chip_.valve(v).edge)] =
              uncovered ? 1.0 : kCoveredCapacity;
        }
        if (!any_uncovered) return;
        const graph::MaxFlowResult flow =
            graph::max_flow(grid, s, t, capacity, channel_mask_);
        if (flow.min_cut.empty()) break;  // ports disconnected; next pair

        // Open everything except the cut: vector = complement of the cut.
        std::vector<graph::EdgeId> open_edges;
        for (graph::EdgeId e : chip_.channel_edges()) {
          if (std::find(flow.min_cut.begin(), flow.min_cut.end(), e) ==
              flow.min_cut.end()) {
            open_edges.push_back(e);
          }
        }
        TestVector vec = make_cut_vector(open_edges, source, meter);
        batch_.load(vec);
        if (!batch_.vector_consistent() || absorb_loaded(vec) == 0) break;
      }
    }
  }

  bool per_fault_stage() {
    bool all_covered = true;
    for (std::size_t f = 0; f < faults_.size(); ++f) {
      if (covered_[f]) continue;
      if (stop_requested(options_.control)) return false;
      if (!cover_single_fault(faults_[f])) all_covered = false;
    }
    return all_covered;
  }

  bool cover_single_fault(const Fault& fault) {
    for (int attempt = 0; attempt < options_.attempts_per_fault; ++attempt) {
      if (stop_requested(options_.control)) return false;
      const auto& [source, meter] = pairs_[rng_.index(pairs_.size())];
      const auto path = random_path_through(fault.valve, source, meter,
                                            attempt % 2 == 1);
      if (!path.has_value()) continue;
      TestVector vec =
          fault.kind == FaultKind::kStuckAt0
              ? make_path_vector(*path, source, meter)
              : make_cut_vector(remove_edge(*path,
                                            chip_.valve(fault.valve).edge),
                                source, meter);
      batch_.load(vec);
      if (!batch_.vector_consistent()) continue;
      if (!batch_.detects(fault)) continue;
      absorb_loaded(vec);
      return true;
    }
    return false;
  }

  static std::vector<graph::EdgeId> remove_edge(
      std::vector<graph::EdgeId> edges, graph::EdgeId edge) {
    edges.erase(std::remove(edges.begin(), edges.end(), edge), edges.end());
    return edges;
  }

  // A random simple source->meter path through the valve's channel segment,
  // or nullopt when this attempt failed. Randomized edge weights vary the
  // route between attempts.
  std::optional<std::vector<graph::EdgeId>> random_path_through(
      ValveId valve, PortId source, PortId meter, bool swap_orientation) {
    const graph::Graph& grid = chip_.grid().graph();
    const graph::EdgeId via = chip_.valve(valve).edge;
    graph::NodeId a = grid.edge(via).u;
    graph::NodeId b = grid.edge(via).v;
    if (swap_orientation) std::swap(a, b);
    const graph::NodeId s = chip_.port(source).node;
    const graph::NodeId t = chip_.port(meter).node;

    std::vector<double> weights(static_cast<std::size_t>(grid.edge_count()));
    for (double& w : weights) w = rng_.uniform(0.05, 1.0);

    graph::EdgeMask mask = channel_mask_;
    mask.set(via, false);
    const auto first = graph::shortest_path_weighted(grid, s, a, weights, mask);
    if (!first.has_value()) return std::nullopt;
    // Keep the path simple: block every node the first segment visited
    // (except the joint a, which only carries `via`).
    for (graph::NodeId n : first->nodes) {
      if (n == a) continue;
      if (n == b || n == t) return std::nullopt;  // would revisit
      for (graph::EdgeId e : grid.incident_edges(n)) mask.set(e, false);
    }
    const auto second =
        graph::shortest_path_weighted(grid, b, t, weights, mask);
    if (!second.has_value()) return std::nullopt;

    std::vector<graph::EdgeId> edges = first->edges;
    edges.push_back(via);
    edges.insert(edges.end(), second->edges.begin(), second->edges.end());
    return edges;
  }

  const Biochip& chip_;
  // One batch kernel instance for the thousands of queries one suite
  // generation issues; VectorSearch objects are single-threaded by
  // construction.
  BatchFaultSimulator batch_;
  std::vector<std::pair<PortId, PortId>> pairs_;
  VectorGenOptions options_;
  Rng rng_;
  graph::EdgeMask channel_mask_;

  std::vector<Fault> faults_;
  std::vector<char> covered_;
  std::vector<TestVector> vectors_;
};

}  // namespace

int TestSuite::path_vector_count() const {
  return static_cast<int>(std::count_if(
      vectors.begin(), vectors.end(), [](const sim::TestVector& v) {
        return v.kind == sim::VectorKind::kPath;
      }));
}

int TestSuite::cut_vector_count() const {
  return static_cast<int>(std::count_if(
      vectors.begin(), vectors.end(), [](const sim::TestVector& v) {
        return v.kind == sim::VectorKind::kCut;
      }));
}

std::optional<TestSuite> generate_test_suite(const arch::Biochip& chip,
                                             arch::PortId source,
                                             arch::PortId meter,
                                             const VectorGenOptions& options) {
  MFD_REQUIRE(source != meter,
              "generate_test_suite(): source and meter must differ");
  VectorSearch search(chip, {{source, meter}}, options);
  return search.run();
}

std::optional<TestSuite> generate_test_suite_multiport(
    const arch::Biochip& chip, const VectorGenOptions& options) {
  std::vector<std::pair<arch::PortId, arch::PortId>> pairs;
  for (arch::PortId a = 0; a < chip.port_count(); ++a) {
    for (arch::PortId b = a + 1; b < chip.port_count(); ++b) {
      pairs.emplace_back(a, b);
    }
  }
  MFD_REQUIRE(!pairs.empty(),
              "generate_test_suite_multiport(): chip needs >= 2 ports");
  VectorSearch search(chip, std::move(pairs), options);
  return search.run();
}

}  // namespace mfd::testgen
