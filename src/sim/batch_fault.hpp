// Single-pass batch fault simulator.
//
// The naive PressureSimulator answers "does this vector detect this fault?"
// with two BFS measure() calls — O(V+E) per (fault, vector) pair. But the
// test model is plain s–t reachability over the open subgraph (Section 2 of
// the paper), so one structural pass per *vector* answers the question for
// every fault at once:
//
//   stuck-at-0 on valve v  flips the reading iff v's channel is open, the
//                          fault-free reading is 1, and the channel is a
//                          bridge separating source from meter;
//   stuck-at-1 on valve v  flips the reading iff v's channel is closed, the
//                          fault-free reading is 0, and force-opening the
//                          channel joins the source- and meter-components;
//   leakage on valve v     is observed at the control port iff the control
//                          is unpressurized (valve open) and the valve site
//                          is reachable from the pressure source.
//
// graph::analyze_subgraph() delivers component labels, bridges and the DFS
// intervals for the separation test in one O(V+E) pass, after which each
// fault classifies in O(1). The PressureSimulator stays as the reference
// oracle (tests/batch_fault_test.cpp proves bit-identical behaviour on
// randomized chips); everything hot — coverage evaluation, diagnosis
// tables, vector-generation absorption — runs on this kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/biochip.hpp"
#include "graph/traversal.hpp"
#include "sim/fault.hpp"
#include "sim/test_vector.hpp"

namespace mfd {
class RunControl;
}

namespace mfd::sim {

struct CoverageReport;
struct FaultSignatures;

/// Classifies all faults of a chip against one loaded test vector. load()
/// costs one O(V+E) subgraph analysis; every detects() after it is O(1).
/// Buffers are reused across load() calls; an instance must not be shared
/// between threads (each evaluation worker owns its own).
class BatchFaultSimulator {
 public:
  explicit BatchFaultSimulator(const arch::Biochip& chip);

  /// Loads a vector: fault-free valve states, the open-edge subgraph and its
  /// component/bridge structure. Must be called before reading()/detects().
  void load(const TestVector& vector);

  /// Fault-free meter reading of the loaded vector.
  [[nodiscard]] bool reading() const { return fault_free_reading_; }

  /// True when the loaded vector's fault-free reading matches its
  /// expected_pressure.
  [[nodiscard]] bool vector_consistent() const {
    return fault_free_reading_ == expected_pressure_;
  }

  /// True when the loaded vector detects the fault — identical to
  /// PressureSimulator::detects() on the same (vector, fault), including
  /// the control-port observation of leakage faults.
  [[nodiscard]] bool detects(const Fault& fault) const;

  [[nodiscard]] const arch::Biochip& chip() const { return *chip_; }

 private:
  /// detects() without the per-call argument checks; the friends below
  /// validate their fault lists once up front and then classify in tight
  /// loops.
  [[nodiscard]] bool classify(const Fault& fault) const;

  friend FaultSignatures compute_signatures(
      const arch::Biochip& chip, const std::vector<TestVector>& vectors,
      const std::vector<Fault>& faults, const RunControl* control);
  friend CoverageReport evaluate_coverage(
      const arch::Biochip& chip, const std::vector<TestVector>& vectors,
      FaultUniverse universe, const RunControl* control);

  const arch::Biochip* chip_;
  bool loaded_ = false;
  bool fault_free_reading_ = false;
  bool expected_pressure_ = false;
  graph::NodeId source_node_ = graph::kInvalidNode;
  graph::NodeId meter_node_ = graph::kInvalidNode;
  std::vector<char> valve_state_;
  graph::EdgeMask open_mask_;
  /// Edges the current load opened — cleared bit-by-bit on the next load,
  /// which beats refilling the whole mask (valves are sparse in the grid).
  std::vector<graph::EdgeId> open_edges_;
  graph::SubgraphAnalysis analysis_;
};

/// Detection signatures of a fault list over a vector sequence, packed one
/// uint64_t lane per 64 vectors (fault-major): bit (v mod 64) of word
/// [f * words_per_fault() + v / 64] is set iff vector v detects fault f.
struct FaultSignatures {
  int fault_count = 0;
  int vector_count = 0;
  std::vector<std::uint64_t> bits;

  [[nodiscard]] int words_per_fault() const { return (vector_count + 63) / 64; }

  [[nodiscard]] bool detects(int fault, int vector) const {
    const auto word = static_cast<std::size_t>(fault) *
                          static_cast<std::size_t>(words_per_fault()) +
                      static_cast<std::size_t>(vector / 64);
    return ((bits[word] >> (vector % 64)) & 1u) != 0;
  }

  /// True when any vector detects the fault.
  [[nodiscard]] bool detected(int fault) const {
    const auto wpf = static_cast<std::size_t>(words_per_fault());
    const auto base = static_cast<std::size_t>(fault) * wpf;
    for (std::size_t w = 0; w < wpf; ++w) {
      if (bits[base + w] != 0) return true;
    }
    return false;
  }
};

/// Computes the full detection matrix: one analyze pass per vector, O(1)
/// per fault. When `control` reports a stop mid-way, the remaining vector
/// columns stay zero (best-effort partial result, consistent with the
/// pipeline's RunControl doctrine).
FaultSignatures compute_signatures(const arch::Biochip& chip,
                                   const std::vector<TestVector>& vectors,
                                   const std::vector<Fault>& faults,
                                   const RunControl* control = nullptr);

}  // namespace mfd::sim
