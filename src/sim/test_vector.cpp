#include "sim/test_vector.hpp"

#include <sstream>

namespace mfd::sim {

const char* to_string(VectorKind kind) {
  return kind == VectorKind::kPath ? "path" : "cut";
}

std::vector<char> controls_closed_except(
    const arch::Biochip& chip,
    const std::vector<arch::ControlId>& open_controls) {
  std::vector<char> state(static_cast<std::size_t>(chip.control_count()), 0);
  for (arch::ControlId c : open_controls) {
    MFD_REQUIRE(c >= 0 && c < chip.control_count(),
                "controls_closed_except(): control out of range");
    state[static_cast<std::size_t>(c)] = 1;
  }
  return state;
}

std::string describe(const TestVector& vector, const arch::Biochip& chip) {
  std::ostringstream oss;
  oss << to_string(vector.kind) << " vector, source "
      << chip.port(vector.source).name << " -> meter "
      << chip.port(vector.meter).name << ", open controls {";
  bool first = true;
  for (arch::ControlId c = 0; c < chip.control_count(); ++c) {
    if (!vector.control_is_open(c)) continue;
    if (!first) oss << ',';
    oss << c;
    first = false;
  }
  oss << "}, expect " << (vector.expected_pressure ? "pressure" : "silence");
  return oss.str();
}

}  // namespace mfd::sim
