// Fault diagnosis from test responses.
//
// Detection (the paper's goal) asks whether *some* vector flips its reading
// under a fault; diagnosis asks which fault produced an observed set of
// readings. Each single fault induces a response signature — the bit vector
// of which test vectors flip — and the achievable diagnostic resolution is
// the partition of the fault universe into equal-signature classes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/pressure.hpp"

namespace mfd::sim {

/// Signature of a fault under a vector set: bit i set iff vector i detects
/// the fault. Stored as a string of '0'/'1' for cheap map keys and display.
using Signature = std::string;

struct DiagnosisTable {
  /// Signature per fault, aligned with all_faults(chip).
  std::vector<Signature> signature_of_fault;
  /// Equivalence classes: faults sharing a signature are indistinguishable.
  std::map<Signature, std::vector<Fault>> classes;

  /// Number of distinct signatures (including the all-zero class if some
  /// fault is undetected).
  [[nodiscard]] int distinct_signatures() const {
    return static_cast<int>(classes.size());
  }

  /// Faults whose signature is shared with at least one other fault.
  [[nodiscard]] int ambiguous_faults() const;

  /// True when every fault is detected (no all-zero signature).
  [[nodiscard]] bool fully_detecting() const;

  /// Fraction of faults uniquely identified by their signature.
  [[nodiscard]] double resolution() const;
};

/// Builds the diagnosis table of a chip under a vector set, over the chosen
/// fault universe (stuck-at only, or including leakage).
DiagnosisTable build_diagnosis_table(
    const arch::Biochip& chip, const std::vector<TestVector>& vectors,
    FaultUniverse universe = FaultUniverse::kStuckAt);

/// Observes the signature an (injected) fault produces on the chip — what a
/// physical test run would measure.
Signature observe_signature(const arch::Biochip& chip,
                            const std::vector<TestVector>& vectors,
                            const Fault& fault);

/// Candidate faults consistent with an observed signature (empty when the
/// signature matches no single fault — e.g. a multiple fault).
std::vector<Fault> diagnose(const DiagnosisTable& table,
                            const Signature& observed);

}  // namespace mfd::sim
