// Fault diagnosis from test responses.
//
// Detection (the paper's goal) asks whether *some* vector flips its reading
// under a fault; diagnosis asks which fault produced an observed set of
// readings. Each single fault induces a response signature — the bit vector
// of which test vectors flip — and the achievable diagnostic resolution is
// the partition of the fault universe into equal-signature classes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/pressure.hpp"

namespace mfd::sim {

/// Signature of a fault under a vector set: bit i set iff vector i detects
/// the fault. Stored as a string of '0'/'1' for cheap map keys and display.
using Signature = std::string;

struct DiagnosisTable {
  /// Signature per fault, aligned with all_faults(chip).
  std::vector<Signature> signature_of_fault;
  /// Equivalence classes: faults sharing a signature are indistinguishable.
  std::map<Signature, std::vector<Fault>> classes;

  /// Number of distinct *diagnostic* signatures: classes whose signature
  /// detects the fault at least once. The all-zero class is not a diagnosis
  /// — an undetected fault looks exactly like a fault-free chip — so it is
  /// reported separately via undetected_faults(), never counted here.
  [[nodiscard]] int distinct_signatures() const;

  /// Faults in the all-zero class (no vector flips any reading).
  [[nodiscard]] int undetected_faults() const;

  /// Detected faults whose signature is shared with at least one other
  /// fault. unique + ambiguous + undetected partitions the fault universe.
  [[nodiscard]] int ambiguous_faults() const;

  /// True when every fault is detected (no all-zero signature).
  [[nodiscard]] bool fully_detecting() const;

  /// Fraction of faults uniquely identified by their signature — detected
  /// singleton classes over the full universe. An undetected singleton is
  /// not identified (its signature is indistinguishable from "no fault"),
  /// so it never counts.
  [[nodiscard]] double resolution() const;
};

/// Builds the diagnosis table of a chip under a vector set, over the chosen
/// fault universe (stuck-at only, or including leakage).
DiagnosisTable build_diagnosis_table(
    const arch::Biochip& chip, const std::vector<TestVector>& vectors,
    FaultUniverse universe = FaultUniverse::kStuckAt);

/// Observes the signature an (injected) fault produces on the chip — what a
/// physical test run would measure.
Signature observe_signature(const arch::Biochip& chip,
                            const std::vector<TestVector>& vectors,
                            const Fault& fault);

/// Candidate faults consistent with an observed signature (empty when the
/// signature matches no single fault — e.g. a multiple fault).
std::vector<Fault> diagnose(const DiagnosisTable& table,
                            const Signature& observed);

}  // namespace mfd::sim
