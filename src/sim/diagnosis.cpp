#include "sim/diagnosis.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "sim/batch_fault.hpp"

namespace mfd::sim {

namespace {

// The all-zero signature — an undetected fault, indistinguishable from a
// fault-free chip. The empty signature (no vectors) is all-zero too.
bool is_detected(const Signature& signature) {
  return signature.find('1') != Signature::npos;
}

}  // namespace

int DiagnosisTable::distinct_signatures() const {
  int total = 0;
  for (const auto& [signature, faults] : classes) {
    if (is_detected(signature)) ++total;
  }
  return total;
}

int DiagnosisTable::undetected_faults() const {
  int total = 0;
  for (const auto& [signature, faults] : classes) {
    if (!is_detected(signature)) total += static_cast<int>(faults.size());
  }
  return total;
}

int DiagnosisTable::ambiguous_faults() const {
  int total = 0;
  for (const auto& [signature, faults] : classes) {
    if (is_detected(signature) && faults.size() > 1) {
      total += static_cast<int>(faults.size());
    }
  }
  return total;
}

bool DiagnosisTable::fully_detecting() const {
  for (const auto& [signature, faults] : classes) {
    if (!is_detected(signature)) return false;
  }
  return true;
}

double DiagnosisTable::resolution() const {
  if (signature_of_fault.empty()) return 1.0;
  int unique = 0;
  for (const auto& [signature, faults] : classes) {
    if (is_detected(signature) && faults.size() == 1) ++unique;
  }
  return static_cast<double>(unique) /
         static_cast<double>(signature_of_fault.size());
}

DiagnosisTable build_diagnosis_table(const arch::Biochip& chip,
                                     const std::vector<TestVector>& vectors,
                                     FaultUniverse universe) {
  const std::vector<Fault> faults = all_faults(chip, universe);
  // The table stores one byte per (fault, vector) cell — at FPVA fault
  // counts (thousands of valves) an oversized request must fail typed, not
  // by allocation death. 2^33 cells = 8 GiB of signature bytes.
  constexpr std::uint64_t kMaxTableCells = std::uint64_t{1} << 33;
  MFD_REQUIRE(static_cast<std::uint64_t>(faults.size()) *
                      static_cast<std::uint64_t>(vectors.size()) <=
                  kMaxTableCells,
              "build_diagnosis_table(): table too large (" +
                  std::to_string(faults.size()) + " faults x " +
                  std::to_string(vectors.size()) + " vectors)");
  const FaultSignatures sigs = compute_signatures(chip, vectors, faults);
  DiagnosisTable table;
  table.signature_of_fault.reserve(faults.size());
  for (std::size_t f = 0; f < faults.size(); ++f) {
    Signature signature;
    signature.reserve(vectors.size());
    for (std::size_t v = 0; v < vectors.size(); ++v) {
      signature += sigs.detects(static_cast<int>(f), static_cast<int>(v))
                       ? '1'
                       : '0';
    }
    table.classes[signature].push_back(faults[f]);
    table.signature_of_fault.push_back(std::move(signature));
  }
  return table;
}

Signature observe_signature(const arch::Biochip& chip,
                            const std::vector<TestVector>& vectors,
                            const Fault& fault) {
  BatchFaultSimulator batch(chip);
  Signature signature;
  signature.reserve(vectors.size());
  for (const TestVector& v : vectors) {
    batch.load(v);
    signature += batch.detects(fault) ? '1' : '0';
  }
  return signature;
}

std::vector<Fault> diagnose(const DiagnosisTable& table,
                            const Signature& observed) {
  const auto hit = table.classes.find(observed);
  if (hit == table.classes.end()) return {};
  return hit->second;
}

}  // namespace mfd::sim
