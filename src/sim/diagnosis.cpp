#include "sim/diagnosis.hpp"

#include <algorithm>

namespace mfd::sim {

int DiagnosisTable::ambiguous_faults() const {
  int total = 0;
  for (const auto& [signature, faults] : classes) {
    if (faults.size() > 1) total += static_cast<int>(faults.size());
  }
  return total;
}

bool DiagnosisTable::fully_detecting() const {
  for (const auto& [signature, faults] : classes) {
    if (signature.find('1') == Signature::npos) return false;
  }
  return true;
}

double DiagnosisTable::resolution() const {
  if (signature_of_fault.empty()) return 1.0;
  int unique = 0;
  for (const auto& [signature, faults] : classes) {
    if (faults.size() == 1) ++unique;
  }
  return static_cast<double>(unique) /
         static_cast<double>(signature_of_fault.size());
}

DiagnosisTable build_diagnosis_table(const arch::Biochip& chip,
                                     const std::vector<TestVector>& vectors,
                                     FaultUniverse universe) {
  const PressureSimulator simulator(chip);
  DiagnosisTable table;
  for (const Fault& fault : all_faults(chip, universe)) {
    Signature signature;
    signature.reserve(vectors.size());
    for (const TestVector& v : vectors) {
      signature += simulator.detects(v, fault) ? '1' : '0';
    }
    table.classes[signature].push_back(fault);
    table.signature_of_fault.push_back(std::move(signature));
  }
  return table;
}

Signature observe_signature(const arch::Biochip& chip,
                            const std::vector<TestVector>& vectors,
                            const Fault& fault) {
  const PressureSimulator simulator(chip);
  Signature signature;
  signature.reserve(vectors.size());
  for (const TestVector& v : vectors) {
    signature += simulator.detects(v, fault) ? '1' : '0';
  }
  return signature;
}

std::vector<Fault> diagnose(const DiagnosisTable& table,
                            const Signature& observed) {
  const auto hit = table.classes.find(observed);
  if (hit == table.classes.end()) return {};
  return hit->second;
}

}  // namespace mfd::sim
