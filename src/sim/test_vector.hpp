// Test vectors in control space.
//
// During test, air pressure is applied to control ports; a pressurized
// control channel closes every valve it drives. A test vector is therefore a
// combination of *control* states (not valve states): under valve sharing a
// single control switches several valves at once, which is exactly the
// interference the validation of Section 4.1 must catch.
#pragma once

#include <string>
#include <vector>

#include "arch/biochip.hpp"

namespace mfd::sim {

enum class VectorKind {
  kPath,  // opens a source->meter path; expects pressure at the meter
  kCut,   // closes a separating valve set; expects no pressure at the meter
};

[[nodiscard]] const char* to_string(VectorKind kind);

struct TestVector {
  VectorKind kind = VectorKind::kPath;
  /// Per control channel: true = depressurized = valves open.
  std::vector<char> control_open;
  /// Port connected to the pressure source.
  arch::PortId source = -1;
  /// Port connected to the pressure meter.
  arch::PortId meter = -1;
  /// Meter reading on a defect-free chip.
  bool expected_pressure = false;

  [[nodiscard]] bool control_is_open(arch::ControlId c) const {
    return control_open[static_cast<std::size_t>(c)] != 0;
  }
};

/// Builds an all-closed control assignment for the chip, then opens the
/// given controls.
std::vector<char> controls_closed_except(const arch::Biochip& chip,
                                         const std::vector<arch::ControlId>&
                                             open_controls);

/// Human-readable one-line summary (for logs and examples).
std::string describe(const TestVector& vector, const arch::Biochip& chip);

}  // namespace mfd::sim
