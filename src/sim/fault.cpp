#include "sim/fault.hpp"

namespace mfd::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckAt0:
      return "stuck-at-0";
    case FaultKind::kStuckAt1:
      return "stuck-at-1";
    case FaultKind::kLeakage:
      return "leakage";
  }
  return "unknown";
}

std::string to_string(const Fault& fault) {
  return "valve " + std::to_string(fault.valve) + " " + to_string(fault.kind);
}

std::vector<Fault> all_faults(const arch::Biochip& chip,
                              FaultUniverse universe) {
  std::vector<Fault> faults;
  const bool leakage = universe == FaultUniverse::kStuckAtAndLeakage;
  faults.reserve(static_cast<std::size_t>(chip.valve_count()) *
                 (leakage ? 3 : 2));
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    faults.push_back(Fault{v, FaultKind::kStuckAt0});
    faults.push_back(Fault{v, FaultKind::kStuckAt1});
  }
  if (leakage) {
    for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
      faults.push_back(Fault{v, FaultKind::kLeakage});
    }
  }
  return faults;
}

}  // namespace mfd::sim
