// Fault model for manufactured continuous-flow biochips.
//
// Following [15] and Section 2 of the paper, the defect classes per testable
// element (a valve together with its channel segment) are:
//   stuck-at-0 — the valve cannot open / the channel is blocked,
//   stuck-at-1 — the valve cannot close (pressure leaks through),
//   leakage    — the flow channel leaks into the valve's control channel
//                (misaligned layers); observable as unexpected pressure at
//                the control port when the valve site is pressurized while
//                its control channel is unpressurized.
// The paper demonstrates its DFT method with the stuck-at classes only, so
// leakage faults are opt-in here; the generated stuck-at test suites cover
// them for free (every valve lies on some open test path).
//
// Faults are physical: they pin one valve's behaviour regardless of its
// control channel, so under valve sharing the partner valves still follow
// the control.
#pragma once

#include <string>
#include <vector>

#include "arch/biochip.hpp"

namespace mfd::sim {

enum class FaultKind { kStuckAt0, kStuckAt1, kLeakage };

[[nodiscard]] const char* to_string(FaultKind kind);

struct Fault {
  arch::ValveId valve = arch::kInvalidValve;
  FaultKind kind = FaultKind::kStuckAt0;

  [[nodiscard]] bool operator==(const Fault&) const = default;
};

[[nodiscard]] std::string to_string(const Fault& fault);

/// Which defect classes a fault universe spans.
enum class FaultUniverse { kStuckAt, kStuckAtAndLeakage };

/// The complete single-fault universe of a chip, in (valve, kind) order:
/// both stuck-at kinds per valve, plus (optionally) one leakage fault per
/// valve appended after them.
std::vector<Fault> all_faults(
    const arch::Biochip& chip,
    FaultUniverse universe = FaultUniverse::kStuckAt);

}  // namespace mfd::sim
