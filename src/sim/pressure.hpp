// Pressure-propagation simulator.
//
// Air pressure applied at the source port propagates through every channel
// whose valve is open; the meter reads pressure iff it is connected to the
// source through open valves. This is the paper's (and [15]'s) test model:
// measurement = s–t reachability over the open subgraph.
#pragma once

#include <optional>

#include "arch/biochip.hpp"
#include "graph/traversal.hpp"
#include "sim/fault.hpp"
#include "sim/test_vector.hpp"

namespace mfd {
class RunControl;
}

namespace mfd::sim {

/// Caller-owned scratch for the simulator's hot paths (valve-state vectors,
/// the open-edge mask, BFS buffers). One context per thread: the simulator
/// itself stays const and re-entrant, so concurrent evaluations only need
/// distinct contexts.
struct EvaluationContext {
  std::vector<char> valve_state;
  graph::EdgeMask open_mask;
  graph::TraversalScratch traversal;
};

/// Simulates meter readings for test vectors, optionally with a single
/// injected fault. The chip must have every valve attached to a control
/// channel (chips still missing a sharing scheme cannot be simulated).
class PressureSimulator {
 public:
  explicit PressureSimulator(const arch::Biochip& chip);

  /// Valve open/closed states induced by a control assignment, with an
  /// optional fault pinning one valve.
  [[nodiscard]] std::vector<char> valve_states(
      const std::vector<char>& control_open,
      const std::optional<Fault>& fault = std::nullopt) const;

  /// Edge mask over the grid enabling exactly the open channels.
  [[nodiscard]] graph::EdgeMask open_mask(
      const std::vector<char>& valve_open) const;

  /// Meter reading (true = pressure measured) for a vector, with an optional
  /// injected fault. Leakage faults do not alter the flow-layer reading (the
  /// binary pressure model keeps the flow network conducting); they are
  /// observed at the control port instead, see control_port_pressure().
  [[nodiscard]] bool measure(const TestVector& vector,
                             const std::optional<Fault>& fault =
                                 std::nullopt) const;

  /// Reading at the faulty valve's control port: true when a leakage fault
  /// lets flow-layer pressure escape into the control channel — which
  /// requires the control to be unpressurized (valve open) and the valve
  /// site to be reachable from the pressure source. Fault-free chips (and
  /// stuck-at faults) never pressurize a control port from the flow layer.
  [[nodiscard]] bool control_port_pressure(const TestVector& vector,
                                           const Fault& fault) const;

  /// True when the vector's reading on the faulty chip differs from the
  /// fault-free reading — at the meter for stuck-at faults, at the control
  /// port for leakage faults.
  [[nodiscard]] bool detects(const TestVector& vector, const Fault& fault) const;

  /// Fault-free reading; must equal vector.expected_pressure for a valid
  /// vector.
  [[nodiscard]] bool vector_consistent(const TestVector& vector) const {
    return measure(vector) == vector.expected_pressure;
  }

  // Allocation-free variants of the queries above: scratch lives in the
  // caller-owned context, so tight loops (coverage evaluation, sharing-scheme
  // validation) reuse buffers instead of allocating per query. Semantics are
  // identical to the context-free overloads.
  bool measure(const TestVector& vector, const std::optional<Fault>& fault,
               EvaluationContext& ctx) const;
  bool control_port_pressure(const TestVector& vector, const Fault& fault,
                             EvaluationContext& ctx) const;
  bool detects(const TestVector& vector, const Fault& fault,
               EvaluationContext& ctx) const;
  bool vector_consistent(const TestVector& vector,
                         EvaluationContext& ctx) const {
    return measure(vector, std::nullopt, ctx) == vector.expected_pressure;
  }

  [[nodiscard]] const arch::Biochip& chip() const { return *chip_; }

 private:
  /// Fills ctx.valve_state and ctx.open_mask for the vector's controls (with
  /// an optional fault pinning one valve), reusing the context's buffers.
  void fill_open_mask(const std::vector<char>& control_open,
                      const std::optional<Fault>& fault,
                      EvaluationContext& ctx) const;

  const arch::Biochip* chip_;
};

/// Coverage of a vector set over the full single-fault universe.
struct CoverageReport {
  int total_faults = 0;
  int detected_faults = 0;
  std::vector<Fault> undetected;

  [[nodiscard]] bool complete() const { return undetected.empty(); }
  [[nodiscard]] double coverage() const {
    return total_faults == 0
               ? 1.0
               : static_cast<double>(detected_faults) / total_faults;
  }
};

/// Coverage of the fault universe under a vector set. Runs on the batch
/// kernel (sim/batch_fault.hpp) with fault dropping: one O(V+E) subgraph
/// analysis per vector, O(1) per still-undetected fault, early exit once
/// everything is covered. A stop reported via `control` yields a partial
/// report covering only the vectors processed so far.
CoverageReport evaluate_coverage(
    const arch::Biochip& chip, const std::vector<TestVector>& vectors,
    FaultUniverse universe = FaultUniverse::kStuckAt,
    const RunControl* control = nullptr);

}  // namespace mfd::sim
