#include "sim/pressure.hpp"

#include "graph/traversal.hpp"

namespace mfd::sim {

PressureSimulator::PressureSimulator(const arch::Biochip& chip)
    : chip_(&chip) {
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    MFD_REQUIRE(chip.valve(v).control != arch::kInvalidControl,
                "PressureSimulator: valve without control channel");
  }
}

std::vector<char> PressureSimulator::valve_states(
    const std::vector<char>& control_open,
    const std::optional<Fault>& fault) const {
  MFD_REQUIRE(control_open.size() ==
                  static_cast<std::size_t>(chip_->control_count()),
              "valve_states(): one state per control channel required");
  std::vector<char> open(static_cast<std::size_t>(chip_->valve_count()), 0);
  for (arch::ValveId v = 0; v < chip_->valve_count(); ++v) {
    const arch::ControlId c = chip_->valve(v).control;
    open[static_cast<std::size_t>(v)] =
        control_open[static_cast<std::size_t>(c)];
  }
  if (fault.has_value() && fault->kind != FaultKind::kLeakage) {
    MFD_REQUIRE(fault->valve >= 0 && fault->valve < chip_->valve_count(),
                "valve_states(): fault on unknown valve");
    open[static_cast<std::size_t>(fault->valve)] =
        fault->kind == FaultKind::kStuckAt1 ? 1 : 0;
  }
  return open;
}

graph::EdgeMask PressureSimulator::open_mask(
    const std::vector<char>& valve_open) const {
  graph::EdgeMask mask(chip_->grid().graph().edge_count(), false);
  for (arch::ValveId v = 0; v < chip_->valve_count(); ++v) {
    if (valve_open[static_cast<std::size_t>(v)]) {
      mask.set(chip_->valve(v).edge, true);
    }
  }
  return mask;
}

void PressureSimulator::fill_open_mask(const std::vector<char>& control_open,
                                       const std::optional<Fault>& fault,
                                       EvaluationContext& ctx) const {
  MFD_REQUIRE(control_open.size() ==
                  static_cast<std::size_t>(chip_->control_count()),
              "valve_states(): one state per control channel required");
  ctx.valve_state.assign(static_cast<std::size_t>(chip_->valve_count()), 0);
  for (arch::ValveId v = 0; v < chip_->valve_count(); ++v) {
    const arch::ControlId c = chip_->valve(v).control;
    ctx.valve_state[static_cast<std::size_t>(v)] =
        control_open[static_cast<std::size_t>(c)];
  }
  if (fault.has_value() && fault->kind != FaultKind::kLeakage) {
    MFD_REQUIRE(fault->valve >= 0 && fault->valve < chip_->valve_count(),
                "valve_states(): fault on unknown valve");
    ctx.valve_state[static_cast<std::size_t>(fault->valve)] =
        fault->kind == FaultKind::kStuckAt1 ? 1 : 0;
  }
  ctx.open_mask.assign(chip_->grid().graph().edge_count(), false);
  for (arch::ValveId v = 0; v < chip_->valve_count(); ++v) {
    if (ctx.valve_state[static_cast<std::size_t>(v)]) {
      ctx.open_mask.set(chip_->valve(v).edge, true);
    }
  }
}

bool PressureSimulator::measure(const TestVector& vector,
                                const std::optional<Fault>& fault) const {
  EvaluationContext ctx;
  return measure(vector, fault, ctx);
}

bool PressureSimulator::measure(const TestVector& vector,
                                const std::optional<Fault>& fault,
                                EvaluationContext& ctx) const {
  MFD_REQUIRE(vector.source >= 0 && vector.source < chip_->port_count() &&
                  vector.meter >= 0 && vector.meter < chip_->port_count(),
              "measure(): vector references unknown port");
  fill_open_mask(vector.control_open, fault, ctx);
  return graph::reachable(chip_->grid().graph(),
                          chip_->port(vector.source).node,
                          chip_->port(vector.meter).node, ctx.open_mask,
                          ctx.traversal);
}

bool PressureSimulator::control_port_pressure(const TestVector& vector,
                                              const Fault& fault) const {
  EvaluationContext ctx;
  return control_port_pressure(vector, fault, ctx);
}

bool PressureSimulator::control_port_pressure(const TestVector& vector,
                                              const Fault& fault,
                                              EvaluationContext& ctx) const {
  if (fault.kind != FaultKind::kLeakage) return false;
  MFD_REQUIRE(fault.valve >= 0 && fault.valve < chip_->valve_count(),
              "control_port_pressure(): fault on unknown valve");
  const arch::Valve& valve = chip_->valve(fault.valve);
  // Pressurized control = closed valve = the control channel already holds
  // pressure; a leak cannot be told apart then.
  if (!vector.control_open[static_cast<std::size_t>(valve.control)]) {
    return false;
  }
  fill_open_mask(vector.control_open, std::nullopt, ctx);
  const graph::Edge& edge = chip_->grid().graph().edge(valve.edge);
  const graph::NodeId source = chip_->port(vector.source).node;
  return graph::reachable(chip_->grid().graph(), source, edge.u, ctx.open_mask,
                          ctx.traversal) ||
         graph::reachable(chip_->grid().graph(), source, edge.v, ctx.open_mask,
                          ctx.traversal);
}

bool PressureSimulator::detects(const TestVector& vector,
                                const Fault& fault) const {
  EvaluationContext ctx;
  return detects(vector, fault, ctx);
}

bool PressureSimulator::detects(const TestVector& vector, const Fault& fault,
                                EvaluationContext& ctx) const {
  if (fault.kind == FaultKind::kLeakage) {
    return control_port_pressure(vector, fault, ctx);
  }
  return measure(vector, fault, ctx) != measure(vector, std::nullopt, ctx);
}

// evaluate_coverage() lives in batch_fault.cpp: it runs on the batch kernel
// and only keeps this simulator as its differential-test oracle.

}  // namespace mfd::sim
