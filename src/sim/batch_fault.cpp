#include "sim/batch_fault.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/run_control.hpp"
#include "sim/pressure.hpp"

namespace mfd::sim {

BatchFaultSimulator::BatchFaultSimulator(const arch::Biochip& chip)
    : chip_(&chip) {
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    MFD_REQUIRE(chip.valve(v).control != arch::kInvalidControl,
                "BatchFaultSimulator: valve without control channel");
  }
  open_mask_.assign(chip.grid().graph().edge_count(), false);
  open_edges_.reserve(static_cast<std::size_t>(chip.valve_count()));
}

void BatchFaultSimulator::load(const TestVector& vector) {
  MFD_REQUIRE(vector.source >= 0 && vector.source < chip_->port_count() &&
                  vector.meter >= 0 && vector.meter < chip_->port_count(),
              "BatchFaultSimulator::load(): vector references unknown port");
  MFD_REQUIRE(vector.control_open.size() ==
                  static_cast<std::size_t>(chip_->control_count()),
              "BatchFaultSimulator::load(): one state per control required");
  // Clear only the bits the previous load set (valves are sparse in the
  // grid's edge set), then write valve states and mask bits in one pass.
  for (const graph::EdgeId e : open_edges_) open_mask_.set(e, false);
  open_edges_.clear();
  valve_state_.resize(static_cast<std::size_t>(chip_->valve_count()));
  for (arch::ValveId v = 0; v < chip_->valve_count(); ++v) {
    const arch::Valve& valve = chip_->valve(v);
    const char state =
        vector.control_open[static_cast<std::size_t>(valve.control)];
    valve_state_[static_cast<std::size_t>(v)] = state;
    if (state) {
      open_mask_.set(valve.edge, true);
      open_edges_.push_back(valve.edge);
    }
  }
  graph::analyze_subgraph(chip_->grid().graph(), open_mask_, analysis_);
  source_node_ = chip_->port(vector.source).node;
  meter_node_ = chip_->port(vector.meter).node;
  fault_free_reading_ = analysis_.connected(source_node_, meter_node_);
  expected_pressure_ = vector.expected_pressure;
  loaded_ = true;
}

bool BatchFaultSimulator::detects(const Fault& fault) const {
  MFD_REQUIRE(loaded_, "BatchFaultSimulator::detects(): no vector loaded");
  MFD_REQUIRE(fault.valve >= 0 && fault.valve < chip_->valve_count(),
              "BatchFaultSimulator::detects(): fault on unknown valve");
  return classify(fault);
}

bool BatchFaultSimulator::classify(const Fault& fault) const {
  const arch::Valve& valve = chip_->valve(fault.valve);
  const bool open = valve_state_[static_cast<std::size_t>(fault.valve)] != 0;
  const graph::Edge& edge = chip_->grid().graph().edge(valve.edge);
  switch (fault.kind) {
    case FaultKind::kStuckAt0:
      // Pinning an already-closed valve changes nothing; removing an open
      // channel flips a 1-reading iff it carried every source->meter route.
      return open && fault_free_reading_ &&
             analysis_.separates(valve.edge, source_node_, meter_node_);
    case FaultKind::kStuckAt1:
      // Pinning an already-open valve changes nothing; adding a channel
      // flips a 0-reading iff it joins the source- and meter-components.
      return !open && !fault_free_reading_ &&
             ((analysis_.connected(source_node_, edge.u) &&
               analysis_.connected(meter_node_, edge.v)) ||
              (analysis_.connected(source_node_, edge.v) &&
               analysis_.connected(meter_node_, edge.u)));
    case FaultKind::kLeakage:
      // Observed at the control port: needs the control unpressurized
      // (valve open — a pressurized control already holds pressure) and the
      // valve site reachable from the source on the fault-free subgraph.
      return open && (analysis_.connected(source_node_, edge.u) ||
                      analysis_.connected(source_node_, edge.v));
  }
  return false;
}

FaultSignatures compute_signatures(const arch::Biochip& chip,
                                   const std::vector<TestVector>& vectors,
                                   const std::vector<Fault>& faults,
                                   const RunControl* control) {
  Tracer* tracer = tracer_of(control);
  // Build the span name only when a tracer is attached — the string
  // concatenation is a heap allocation this hot path skips otherwise.
  const Tracer::Span span =
      tracer == nullptr
          ? Tracer::Span()
          : tracer->span("compute_signatures f=" +
                         std::to_string(faults.size()) +
                         " v=" + std::to_string(vectors.size()));
  // Size guards, promoted to MFD_REQUIRE for the FPVA regime (thousands of
  // valves): the counts must survive the int casts below, and the packed
  // matrix must not silently wrap or exhaust memory. The cell cap (2^36
  // bits = 8 GiB of signature) is far beyond any real campaign but turns a
  // runaway request into a typed error instead of an allocation death.
  MFD_REQUIRE(faults.size() <=
                  static_cast<std::size_t>(std::numeric_limits<int>::max()),
              "compute_signatures(): fault count overflows int");
  MFD_REQUIRE(vectors.size() <=
                  static_cast<std::size_t>(std::numeric_limits<int>::max()),
              "compute_signatures(): vector count overflows int");
  FaultSignatures sigs;
  sigs.fault_count = static_cast<int>(faults.size());
  sigs.vector_count = static_cast<int>(vectors.size());
  const auto wpf = static_cast<std::size_t>(sigs.words_per_fault());
  constexpr std::uint64_t kMaxSignatureWords = std::uint64_t{1} << 30;
  MFD_REQUIRE(static_cast<std::uint64_t>(sigs.fault_count) * wpf <=
                  kMaxSignatureWords,
              "compute_signatures(): signature matrix too large (" +
                  std::to_string(sigs.fault_count) + " faults x " +
                  std::to_string(sigs.vector_count) + " vectors)");
  sigs.bits.assign(static_cast<std::size_t>(sigs.fault_count) * wpf, 0);
  BatchFaultSimulator batch(chip);
  for (const Fault& fault : faults) {
    MFD_REQUIRE(fault.valve >= 0 && fault.valve < chip.valve_count(),
                "compute_signatures(): fault on unknown valve");
  }
  for (std::size_t vi = 0; vi < vectors.size(); ++vi) {
    if (stop_requested(control)) break;
    batch.load(vectors[vi]);
    const std::size_t word_offset = vi / 64;
    const std::uint64_t bit = std::uint64_t{1} << (vi % 64);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (batch.classify(faults[fi])) {
        sigs.bits[fi * wpf + word_offset] |= bit;
      }
    }
  }
  return sigs;
}

// Declared in pressure.hpp next to the naive simulator, implemented here:
// coverage only needs one detected bit per fault, so it runs the batch
// kernel with fault dropping (detected faults leave the scan) and exits as
// soon as the whole universe is covered.
CoverageReport evaluate_coverage(const arch::Biochip& chip,
                                 const std::vector<TestVector>& vectors,
                                 FaultUniverse universe,
                                 const RunControl* control) {
  Tracer* tracer = tracer_of(control);
  const Tracer::Span span =
      tracer == nullptr ? Tracer::Span() : tracer->span("evaluate_coverage");
  // Fault index i maps to all_faults(chip, universe)[i] without
  // materializing the list: both stuck-at kinds per valve first, leakage
  // faults appended. The brute-force parity tests pin this correspondence.
  const int stuck = 2 * chip.valve_count();
  const int total = universe == FaultUniverse::kStuckAtAndLeakage
                        ? 3 * chip.valve_count()
                        : stuck;
  const auto fault_at = [stuck](int idx) {
    return idx < stuck ? Fault{idx / 2, (idx % 2) != 0 ? FaultKind::kStuckAt1
                                                       : FaultKind::kStuckAt0}
                       : Fault{idx - stuck, FaultKind::kLeakage};
  };
  CoverageReport report;
  report.total_faults = total;
  if (total == 0) return report;

  BatchFaultSimulator batch(chip);
  // Compact worklist of still-undetected fault indices; detection swaps the
  // entry out, so each vector only scans the shrinking remainder.
  std::vector<int> remaining(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    remaining[static_cast<std::size_t>(i)] = i;
  }
  for (const TestVector& vector : vectors) {
    if (remaining.empty() || stop_requested(control)) break;
    batch.load(vector);
    for (std::size_t i = 0; i < remaining.size();) {
      if (batch.classify(fault_at(remaining[i]))) {
        remaining[i] = remaining.back();
        remaining.pop_back();
      } else {
        ++i;
      }
    }
  }
  report.detected_faults =
      report.total_faults - static_cast<int>(remaining.size());
  std::sort(remaining.begin(), remaining.end());
  report.undetected.reserve(remaining.size());
  for (int idx : remaining) {
    report.undetected.push_back(fault_at(idx));
  }
  if (tracer != nullptr) {
    tracer->counter("coverage.undetected",
                    static_cast<std::int64_t>(report.undetected.size()));
  }
  return report;
}

}  // namespace mfd::sim
