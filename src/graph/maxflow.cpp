#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/traversal.hpp"

namespace mfd::graph {

namespace {

constexpr double kEps = 1e-9;

// Arc-based residual network for Dinic's algorithm. Arc 2k and 2k+1 are a
// forward/backward pair. For an undirected edge both directions start with
// the full capacity.
class Dinic {
 public:
  Dinic(int node_count) : head_(static_cast<std::size_t>(node_count), -1) {}

  void add_undirected(NodeId u, NodeId v, double cap, EdgeId origin) {
    add_arc(u, v, cap, origin);
    add_arc(v, u, cap, origin);
  }

  double run(NodeId s, NodeId t) {
    double total = 0.0;
    while (build_levels(s, t)) {
      iter_ = head_;
      while (true) {
        const double pushed =
            push(s, t, std::numeric_limits<double>::infinity());
        if (pushed < kEps) break;
        total += pushed;
      }
    }
    return total;
  }

  /// Nodes reachable from s in the final residual network.
  [[nodiscard]] std::vector<char> residual_reachable(NodeId s) const {
    std::vector<char> seen(head_.size(), 0);
    std::queue<NodeId> queue;
    seen[static_cast<std::size_t>(s)] = 1;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId n = queue.front();
      queue.pop();
      for (int a = head_[static_cast<std::size_t>(n)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.residual < kEps) continue;
        if (!seen[static_cast<std::size_t>(arc.to)]) {
          seen[static_cast<std::size_t>(arc.to)] = 1;
          queue.push(arc.to);
        }
      }
    }
    return seen;
  }

  /// Net flow across the original undirected edge with the given arc pair
  /// base (positive in the direction of the first arc). Pushing f forward
  /// leaves residuals (c - f, c + f), so the net is half their difference.
  [[nodiscard]] double net_flow(int pair_base) const {
    const double res_fwd = arcs_[static_cast<std::size_t>(pair_base)].residual;
    const double res_bwd =
        arcs_[static_cast<std::size_t>(pair_base) + 1].residual;
    return (res_bwd - res_fwd) / 2.0;
  }

 private:
  struct Arc {
    NodeId to;
    double residual;
    int next;
    EdgeId origin;
  };

  void add_arc(NodeId from, NodeId to, double cap, EdgeId origin) {
    arcs_.push_back(Arc{to, cap, head_[static_cast<std::size_t>(from)],
                        origin});
    head_[static_cast<std::size_t>(from)] =
        static_cast<int>(arcs_.size()) - 1;
  }

  bool build_levels(NodeId s, NodeId t) {
    level_.assign(head_.size(), -1);
    std::queue<NodeId> queue;
    level_[static_cast<std::size_t>(s)] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId n = queue.front();
      queue.pop();
      for (int a = head_[static_cast<std::size_t>(n)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.residual < kEps) continue;
        if (level_[static_cast<std::size_t>(arc.to)] == -1) {
          level_[static_cast<std::size_t>(arc.to)] =
              level_[static_cast<std::size_t>(n)] + 1;
          queue.push(arc.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(t)] != -1;
  }

  double push(NodeId n, NodeId t, double limit) {
    if (n == t) return limit;
    for (int& a = iter_[static_cast<std::size_t>(n)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.residual < kEps) continue;
      if (level_[static_cast<std::size_t>(arc.to)] !=
          level_[static_cast<std::size_t>(n)] + 1) {
        continue;
      }
      const double pushed =
          push(arc.to, t, std::min(limit, arc.residual));
      if (pushed > kEps) {
        arc.residual -= pushed;
        // Paired arc: even index pairs with +1, odd with -1.
        const std::size_t paired = static_cast<std::size_t>(a) ^ 1u;
        arcs_[paired].residual += pushed;
        return pushed;
      }
    }
    return 0.0;
  }

  std::vector<Arc> arcs_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace

MaxFlowResult max_flow(const Graph& g, NodeId s, NodeId t,
                       const std::vector<double>& capacity,
                       const EdgeMask& mask) {
  MFD_REQUIRE(g.has_node(s) && g.has_node(t), "max_flow(): unknown node");
  MFD_REQUIRE(s != t, "max_flow(): source equals sink");
  MFD_REQUIRE(capacity.size() == static_cast<std::size_t>(g.edge_count()),
              "max_flow(): one capacity per edge required");

  Dinic dinic(g.node_count());
  // Arc pair base per original edge, kInvalidEdge when the edge is skipped.
  std::vector<int> pair_base(static_cast<std::size_t>(g.edge_count()), -1);
  int next_base = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const double cap = capacity[static_cast<std::size_t>(e)];
    MFD_REQUIRE(cap >= 0.0, "max_flow(): negative capacity");
    if (!mask.enabled(e) || cap < kEps) continue;
    const Edge& edge = g.edge(e);
    dinic.add_undirected(edge.u, edge.v, cap, e);
    pair_base[static_cast<std::size_t>(e)] = next_base;
    next_base += 2;
  }

  MaxFlowResult result;
  result.value = dinic.run(s, t);
  result.source_side = dinic.residual_reachable(s);
  result.flow.assign(static_cast<std::size_t>(g.edge_count()), 0.0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const int base = pair_base[static_cast<std::size_t>(e)];
    if (base == -1) continue;
    result.flow[static_cast<std::size_t>(e)] = dinic.net_flow(base);
    const Edge& edge = g.edge(e);
    const bool u_side = result.source_side[static_cast<std::size_t>(edge.u)];
    const bool v_side = result.source_side[static_cast<std::size_t>(edge.v)];
    if (u_side != v_side) result.min_cut.push_back(e);
  }
  return result;
}

int edge_connectivity(const Graph& g, NodeId s, NodeId t,
                      const EdgeMask& mask) {
  std::vector<double> unit(static_cast<std::size_t>(g.edge_count()), 1.0);
  const MaxFlowResult r = max_flow(g, s, t, unit, mask);
  return static_cast<int>(r.value + 0.5);
}

std::vector<EdgeId> make_cut_minimal(const Graph& g, NodeId s, NodeId t,
                                     std::vector<EdgeId> cut,
                                     const EdgeMask& mask) {
  EdgeMask open = mask.empty() ? EdgeMask(g.edge_count(), true) : mask;
  for (EdgeId e : cut) open.set(e, false);
  MFD_REQUIRE(!reachable(g, s, t, open),
              "make_cut_minimal(): candidate does not separate s and t");

  // Greedily re-open members that are not needed; a member is kept only when
  // re-opening it reconnects s and t.
  std::vector<EdgeId> minimal;
  for (std::size_t i = 0; i < cut.size(); ++i) {
    const EdgeId e = cut[i];
    open.set(e, true);
    if (reachable(g, s, t, open)) {
      open.set(e, false);
      minimal.push_back(e);
    }
    // Otherwise leave it open: it was redundant.
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

}  // namespace mfd::graph
