// Generic undirected graph used across the library.
//
// The biochip architecture, the virtual connection grid, and the pressure
// network are all instances of this graph: nodes are ports / devices /
// channel crossings, edges are channel segments guarded by valves. Algorithms
// accept an optional edge mask so callers can query the subgraph induced by
// "open" valves without copying the graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mfd::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// An undirected edge between two nodes.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  /// Returns the endpoint opposite to `from`.
  [[nodiscard]] NodeId other(NodeId from) const {
    MFD_REQUIRE(from == u || from == v, "other(): node not on edge");
    return from == u ? v : u;
  }
};

/// Compact undirected multigraph with integer node/edge identifiers and an
/// adjacency index. Nodes and edges are append-only; algorithms that need to
/// "remove" elements do so through masks.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int node_count) { add_nodes(node_count); }

  /// Adds one node and returns its id.
  NodeId add_node();

  /// Adds `count` nodes; returns the id of the first.
  NodeId add_nodes(int count);

  /// Adds an undirected edge; parallel edges and self-loops are rejected
  /// (neither occurs in a chip netlist, and allowing them would complicate
  /// every downstream algorithm for no benefit).
  EdgeId add_edge(NodeId u, NodeId v);

  [[nodiscard]] int node_count() const {
    return static_cast<int>(adjacency_.size());
  }
  [[nodiscard]] int edge_count() const {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    MFD_REQUIRE(e >= 0 && e < edge_count(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids incident to `n`.
  [[nodiscard]] const std::vector<EdgeId>& incident_edges(NodeId n) const {
    MFD_REQUIRE(n >= 0 && n < node_count(), "node id out of range");
    return adjacency_[static_cast<std::size_t>(n)];
  }

  [[nodiscard]] int degree(NodeId n) const {
    return static_cast<int>(incident_edges(n).size());
  }

  /// Returns the edge joining u and v, or kInvalidEdge if absent.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  [[nodiscard]] bool has_node(NodeId n) const {
    return n >= 0 && n < node_count();
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

/// A mask over edges: empty() means "all edges enabled".
class EdgeMask {
 public:
  EdgeMask() = default;

  /// Builds a mask over `edge_count` edges, all set to `initial`.
  EdgeMask(int edge_count, bool initial)
      : bits_(static_cast<std::size_t>(edge_count), initial) {}

  /// Resizes to `edge_count` edges, all set to `value`, reusing the existing
  /// allocation. Lets evaluation scratch buffers survive across runs.
  void assign(int edge_count, bool value) {
    bits_.assign(static_cast<std::size_t>(edge_count), value);
  }

  [[nodiscard]] bool enabled(EdgeId e) const {
    if (bits_.empty()) return true;
    MFD_REQUIRE(static_cast<std::size_t>(e) < bits_.size(),
                "edge id out of mask range");
    return bits_[static_cast<std::size_t>(e)] != 0;
  }

  void set(EdgeId e, bool value) {
    MFD_REQUIRE(static_cast<std::size_t>(e) < bits_.size(),
                "edge id out of mask range");
    bits_[static_cast<std::size_t>(e)] = value;
  }

  [[nodiscard]] bool empty() const { return bits_.empty(); }
  [[nodiscard]] std::size_t size() const { return bits_.size(); }

 private:
  std::vector<char> bits_;
};

}  // namespace mfd::graph
