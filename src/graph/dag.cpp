#include "graph/dag.hpp"

#include <algorithm>
#include <queue>

namespace mfd::graph {

NodeId Digraph::add_node() {
  successors_.emplace_back();
  predecessors_.emplace_back();
  return static_cast<NodeId>(successors_.size() - 1);
}

NodeId Digraph::add_nodes(int count) {
  MFD_REQUIRE(count >= 0, "add_nodes(): count must be non-negative");
  const NodeId first = static_cast<NodeId>(successors_.size());
  successors_.resize(successors_.size() + static_cast<std::size_t>(count));
  predecessors_.resize(predecessors_.size() + static_cast<std::size_t>(count));
  return first;
}

void Digraph::add_arc(NodeId u, NodeId v) {
  MFD_REQUIRE(has_node(u) && has_node(v), "add_arc(): unknown endpoint");
  MFD_REQUIRE(u != v, "add_arc(): self-loops are not supported");
  MFD_REQUIRE(!has_arc(u, v), "add_arc(): duplicate arc");
  successors_[static_cast<std::size_t>(u)].push_back(v);
  predecessors_[static_cast<std::size_t>(v)].push_back(u);
}

const std::vector<NodeId>& Digraph::successors(NodeId n) const {
  MFD_REQUIRE(has_node(n), "successors(): unknown node");
  return successors_[static_cast<std::size_t>(n)];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId n) const {
  MFD_REQUIRE(has_node(n), "predecessors(): unknown node");
  return predecessors_[static_cast<std::size_t>(n)];
}

bool Digraph::has_arc(NodeId u, NodeId v) const {
  MFD_REQUIRE(has_node(u) && has_node(v), "has_arc(): unknown endpoint");
  const auto& succ = successors_[static_cast<std::size_t>(u)];
  return std::find(succ.begin(), succ.end(), v) != succ.end();
}

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  std::vector<int> remaining(static_cast<std::size_t>(g.node_count()));
  std::queue<NodeId> ready;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    remaining[static_cast<std::size_t>(n)] = g.in_degree(n);
    if (remaining[static_cast<std::size_t>(n)] == 0) ready.push(n);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.node_count()));
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop();
    order.push_back(n);
    for (NodeId m : g.successors(n)) {
      if (--remaining[static_cast<std::size_t>(m)] == 0) ready.push(m);
    }
  }
  if (order.size() != static_cast<std::size_t>(g.node_count())) {
    return std::nullopt;
  }
  return order;
}

bool is_dag(const Digraph& g) { return topological_order(g).has_value(); }

std::vector<double> critical_path_lengths(const Digraph& g,
                                          const std::vector<double>& weight) {
  MFD_REQUIRE(weight.size() == static_cast<std::size_t>(g.node_count()),
              "critical_path_lengths(): one weight per node required");
  const auto order = topological_order(g);
  MFD_REQUIRE(order.has_value(), "critical_path_lengths(): graph is cyclic");
  std::vector<double> length(static_cast<std::size_t>(g.node_count()), 0.0);
  // Process in reverse topological order: length(n) = w(n) + max(successors).
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId n = *it;
    double best = 0.0;
    for (NodeId m : g.successors(n)) {
      best = std::max(best, length[static_cast<std::size_t>(m)]);
    }
    length[static_cast<std::size_t>(n)] =
        weight[static_cast<std::size_t>(n)] + best;
  }
  return length;
}

}  // namespace mfd::graph
