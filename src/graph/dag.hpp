// Directed-acyclic-graph utilities for bioassay sequencing graphs.
//
// A sequencing graph G = (O, E) has an operation per node and a precedence
// edge per data dependency (Figure 2 of the paper). The scheduler needs
// topological order and critical-path lengths for its list-scheduling
// priorities.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::graph {

/// Minimal directed graph (adjacency-list, append-only).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int node_count) { add_nodes(node_count); }

  NodeId add_node();
  NodeId add_nodes(int count);

  /// Adds arc u -> v. Duplicate arcs are rejected.
  void add_arc(NodeId u, NodeId v);

  [[nodiscard]] int node_count() const {
    return static_cast<int>(successors_.size());
  }
  [[nodiscard]] const std::vector<NodeId>& successors(NodeId n) const;
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId n) const;
  [[nodiscard]] int in_degree(NodeId n) const {
    return static_cast<int>(predecessors(n).size());
  }
  [[nodiscard]] int out_degree(NodeId n) const {
    return static_cast<int>(successors(n).size());
  }
  [[nodiscard]] bool has_node(NodeId n) const {
    return n >= 0 && n < node_count();
  }
  [[nodiscard]] bool has_arc(NodeId u, NodeId v) const;

 private:
  std::vector<std::vector<NodeId>> successors_;
  std::vector<std::vector<NodeId>> predecessors_;
};

/// Kahn topological order; nullopt when the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

/// True when the digraph has no directed cycle.
bool is_dag(const Digraph& g);

/// Longest path (critical path) from each node to any sink, where each node
/// carries the given non-negative weight (its operation duration). Used as
/// list-scheduling priority. Throws when the graph is cyclic.
std::vector<double> critical_path_lengths(const Digraph& g,
                                          const std::vector<double>& weight);

}  // namespace mfd::graph
