#include "graph/traversal.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace mfd::graph {

namespace {

struct BfsResult {
  std::vector<EdgeId> parent_edge;  // edge used to reach node, or kInvalidEdge
  std::vector<char> visited;
};

BfsResult bfs(const Graph& g, NodeId source, const EdgeMask& mask,
              NodeId stop_at = kInvalidNode) {
  BfsResult r;
  r.parent_edge.assign(static_cast<std::size_t>(g.node_count()), kInvalidEdge);
  r.visited.assign(static_cast<std::size_t>(g.node_count()), 0);
  std::queue<NodeId> queue;
  r.visited[static_cast<std::size_t>(source)] = 1;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop();
    if (n == stop_at) break;
    for (EdgeId e : g.incident_edges(n)) {
      if (!mask.enabled(e)) continue;
      const NodeId m = g.edge(e).other(n);
      if (r.visited[static_cast<std::size_t>(m)]) continue;
      r.visited[static_cast<std::size_t>(m)] = 1;
      r.parent_edge[static_cast<std::size_t>(m)] = e;
      queue.push(m);
    }
  }
  return r;
}

Path trace_back(const Graph& g, const std::vector<EdgeId>& parent_edge,
                NodeId source, NodeId target) {
  Path path;
  NodeId n = target;
  while (n != source) {
    const EdgeId e = parent_edge[static_cast<std::size_t>(n)];
    MFD_ASSERT(e != kInvalidEdge, "trace_back(): broken parent chain");
    path.edges.push_back(e);
    path.nodes.push_back(n);
    n = g.edge(e).other(n);
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

}  // namespace

bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeMask& mask) {
  MFD_REQUIRE(g.has_node(source) && g.has_node(target),
              "reachable(): unknown node");
  if (source == target) return true;
  const BfsResult r = bfs(g, source, mask, target);
  return r.visited[static_cast<std::size_t>(target)] != 0;
}

bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeMask& mask, TraversalScratch& scratch) {
  MFD_REQUIRE(g.has_node(source) && g.has_node(target),
              "reachable(): unknown node");
  if (source == target) return true;
  scratch.visited.assign(static_cast<std::size_t>(g.node_count()), 0);
  scratch.frontier.clear();
  scratch.visited[static_cast<std::size_t>(source)] = 1;
  scratch.frontier.push_back(source);
  // The frontier is consumed as a stack; reachability does not care about
  // visit order, and a vector reuses its capacity across calls.
  while (!scratch.frontier.empty()) {
    const NodeId n = scratch.frontier.back();
    scratch.frontier.pop_back();
    for (EdgeId e : g.incident_edges(n)) {
      if (!mask.enabled(e)) continue;
      const NodeId m = g.edge(e).other(n);
      if (scratch.visited[static_cast<std::size_t>(m)]) continue;
      if (m == target) return true;
      scratch.visited[static_cast<std::size_t>(m)] = 1;
      scratch.frontier.push_back(m);
    }
  }
  return false;
}

std::vector<NodeId> reachable_set(const Graph& g, NodeId source,
                                  const EdgeMask& mask) {
  MFD_REQUIRE(g.has_node(source), "reachable_set(): unknown node");
  const BfsResult r = bfs(g, source, mask);
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    if (r.visited[static_cast<std::size_t>(n)]) nodes.push_back(n);
  }
  return nodes;
}

std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeMask& mask) {
  MFD_REQUIRE(g.has_node(source) && g.has_node(target),
              "shortest_path(): unknown node");
  if (source == target) return Path{{source}, {}};
  const BfsResult r = bfs(g, source, mask, target);
  if (!r.visited[static_cast<std::size_t>(target)]) return std::nullopt;
  return trace_back(g, r.parent_edge, source, target);
}

std::optional<Path> shortest_path_weighted(const Graph& g, NodeId source,
                                           NodeId target,
                                           const std::vector<double>& weights,
                                           const EdgeMask& mask) {
  MFD_REQUIRE(g.has_node(source) && g.has_node(target),
              "shortest_path_weighted(): unknown node");
  MFD_REQUIRE(weights.size() == static_cast<std::size_t>(g.edge_count()),
              "shortest_path_weighted(): one weight per edge required");
  for (double w : weights) {
    MFD_REQUIRE(w >= 0.0, "shortest_path_weighted(): negative weight");
  }
  if (source == target) return Path{{source}, {}};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.node_count()), kInf);
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.node_count()),
                             kInvalidEdge);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, n] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(n)]) continue;
    if (n == target) break;
    for (EdgeId e : g.incident_edges(n)) {
      if (!mask.enabled(e)) continue;
      const NodeId m = g.edge(e).other(n);
      const double nd = d + weights[static_cast<std::size_t>(e)];
      if (nd < dist[static_cast<std::size_t>(m)]) {
        dist[static_cast<std::size_t>(m)] = nd;
        parent[static_cast<std::size_t>(m)] = e;
        heap.emplace(nd, m);
      }
    }
  }
  if (dist[static_cast<std::size_t>(target)] == kInf) return std::nullopt;
  return trace_back(g, parent, source, target);
}

std::vector<int> connected_components(const Graph& g, const EdgeMask& mask) {
  std::vector<int> component(static_cast<std::size_t>(g.node_count()), -1);
  int next = 0;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (component[static_cast<std::size_t>(start)] != -1) continue;
    const int id = next++;
    std::queue<NodeId> queue;
    component[static_cast<std::size_t>(start)] = id;
    queue.push(start);
    while (!queue.empty()) {
      const NodeId n = queue.front();
      queue.pop();
      for (EdgeId e : g.incident_edges(n)) {
        if (!mask.enabled(e)) continue;
        const NodeId m = g.edge(e).other(n);
        if (component[static_cast<std::size_t>(m)] == -1) {
          component[static_cast<std::size_t>(m)] = id;
          queue.push(m);
        }
      }
    }
  }
  return component;
}

bool edge_separates(const Graph& g, EdgeId bridge_candidate, NodeId source,
                    NodeId target, const EdgeMask& mask) {
  MFD_REQUIRE(bridge_candidate >= 0 && bridge_candidate < g.edge_count(),
              "edge_separates(): unknown edge");
  EdgeMask local = mask.empty() ? EdgeMask(g.edge_count(), true) : mask;
  if (!local.enabled(bridge_candidate)) {
    // Already disabled: removing it changes nothing.
    return !reachable(g, source, target, local);
  }
  local.set(bridge_candidate, false);
  return !reachable(g, source, target, local);
}

void analyze_subgraph(const Graph& g, const EdgeMask& mask,
                      SubgraphAnalysis& out) {
  const auto n_count = static_cast<std::size_t>(g.node_count());
  const auto e_count = static_cast<std::size_t>(g.edge_count());
  // tin doubles as the visited marker and must be cleared; component, tout
  // and low are written at every discovery/pop, and bridge_child is only
  // read for flagged bridges, so those skip the fill (this is a per-vector
  // hot path in the batch fault simulator).
  out.component.resize(n_count);
  out.component_count = 0;
  out.is_bridge.assign(e_count, 0);
  out.bridge_child.resize(e_count);
  out.tin.assign(n_count, -1);
  out.tout.resize(n_count);
  out.low.resize(n_count);
  out.stack.clear();
  int timer = 0;

  // Iterative lowlink DFS (long channel chains would overflow a recursive
  // one). Entry and exit times share one counter so subtree membership is
  // the interval test tin[c] <= tin[x] && tout[x] <= tout[c].
  for (NodeId root = 0; root < g.node_count(); ++root) {
    if (out.tin[static_cast<std::size_t>(root)] != -1) continue;
    const int comp = out.component_count++;
    // Nodes with no enabled edge are singleton components; giving them
    // their interval without a DFS frame matters when the enabled subgraph
    // is sparse (the common case for fault-simulation open masks).
    bool isolated = true;
    for (const EdgeId e : g.incident_edges(root)) {
      if (mask.enabled(e)) {
        isolated = false;
        break;
      }
    }
    if (isolated) {
      out.component[static_cast<std::size_t>(root)] = comp;
      out.tin[static_cast<std::size_t>(root)] =
          out.low[static_cast<std::size_t>(root)] = timer++;
      out.tout[static_cast<std::size_t>(root)] = timer++;
      continue;
    }
    out.stack.push_back({root, kInvalidEdge, 0});
    out.component[static_cast<std::size_t>(root)] = comp;
    out.tin[static_cast<std::size_t>(root)] =
        out.low[static_cast<std::size_t>(root)] = timer++;
    while (!out.stack.empty()) {
      SubgraphAnalysis::Frame& frame = out.stack.back();
      const auto& incident = g.incident_edges(frame.node);
      if (frame.next_index < incident.size()) {
        const EdgeId e = incident[frame.next_index++];
        if (!mask.enabled(e) || e == frame.via_edge) continue;
        const Edge& edge = g.edge(e);
        const NodeId m = edge.u == frame.node ? edge.v : edge.u;
        if (out.tin[static_cast<std::size_t>(m)] == -1) {
          out.component[static_cast<std::size_t>(m)] = comp;
          out.tin[static_cast<std::size_t>(m)] =
              out.low[static_cast<std::size_t>(m)] = timer++;
          out.stack.push_back({m, e, 0});
        } else {
          out.low[static_cast<std::size_t>(frame.node)] =
              std::min(out.low[static_cast<std::size_t>(frame.node)],
                       out.tin[static_cast<std::size_t>(m)]);
        }
      } else {
        const NodeId done = frame.node;
        const EdgeId via = frame.via_edge;
        out.tout[static_cast<std::size_t>(done)] = timer++;
        out.stack.pop_back();
        if (!out.stack.empty()) {
          const NodeId parent = out.stack.back().node;
          out.low[static_cast<std::size_t>(parent)] =
              std::min(out.low[static_cast<std::size_t>(parent)],
                       out.low[static_cast<std::size_t>(done)]);
          if (out.low[static_cast<std::size_t>(done)] >
              out.tin[static_cast<std::size_t>(parent)]) {
            out.is_bridge[static_cast<std::size_t>(via)] = 1;
            out.bridge_child[static_cast<std::size_t>(via)] = done;
          }
        }
      }
    }
  }
}

std::vector<EdgeId> bridges(const Graph& g, const EdgeMask& mask) {
  SubgraphAnalysis analysis;
  analyze_subgraph(g, mask, analysis);
  std::vector<EdgeId> result;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (analysis.is_bridge[static_cast<std::size_t>(e)]) result.push_back(e);
  }
  return result;
}

}  // namespace mfd::graph
