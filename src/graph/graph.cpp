#include "graph/graph.hpp"

namespace mfd::graph {

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

NodeId Graph::add_nodes(int count) {
  MFD_REQUIRE(count >= 0, "add_nodes(): count must be non-negative");
  const NodeId first = static_cast<NodeId>(adjacency_.size());
  adjacency_.resize(adjacency_.size() + static_cast<std::size_t>(count));
  return first;
}

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  MFD_REQUIRE(has_node(u) && has_node(v), "add_edge(): unknown endpoint");
  MFD_REQUIRE(u != v, "add_edge(): self-loops are not supported");
  MFD_REQUIRE(find_edge(u, v) == kInvalidEdge,
              "add_edge(): parallel edges are not supported");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v});
  adjacency_[static_cast<std::size_t>(u)].push_back(id);
  adjacency_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  MFD_REQUIRE(has_node(u) && has_node(v), "find_edge(): unknown endpoint");
  // Scan the smaller adjacency list.
  const NodeId base = degree(u) <= degree(v) ? u : v;
  const NodeId target = base == u ? v : u;
  for (EdgeId e : incident_edges(base)) {
    if (edges_[static_cast<std::size_t>(e)].other(base) == target) return e;
  }
  return kInvalidEdge;
}

}  // namespace mfd::graph
