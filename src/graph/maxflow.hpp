// Dinic max-flow / min-cut over the undirected chip graph.
//
// Test-cut generation (Section 3 of the paper, the "complementary problem" of
// path generation) is implemented as a weighted minimum s–t cut: valves whose
// stuck-at-1 fault is still uncovered get low capacity, covered valves get
// high capacity, so the minimum cut preferentially collects uncovered valves.
// Every minimum cut under strictly positive capacities is inclusion-minimal,
// which is exactly the property that makes each member's stuck-at-1 fault
// observable (re-opening any single member reconnects source and meter).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mfd::graph {

struct MaxFlowResult {
  /// Total flow value from source to sink.
  double value = 0.0;
  /// Signed flow per original edge: positive when flowing u -> v.
  std::vector<double> flow;
  /// Edges of the induced minimum cut (endpoints on different sides).
  std::vector<EdgeId> min_cut;
  /// Per node: 1 when on the source side of the residual partition.
  std::vector<char> source_side;
};

/// Computes a maximum flow between s and t treating each enabled undirected
/// edge as bidirectional with the given capacity. Capacities must be
/// non-negative; disabled edges carry no flow.
MaxFlowResult max_flow(const Graph& g, NodeId s, NodeId t,
                       const std::vector<double>& capacity,
                       const EdgeMask& mask = {});

/// Number of edge-disjoint s–t paths in the enabled subgraph (unit-capacity
/// max-flow).
int edge_connectivity(const Graph& g, NodeId s, NodeId t,
                      const EdgeMask& mask = {});

/// Removes redundant members from a candidate s–t edge cut so that re-adding
/// any remaining member reconnects s and t. The input must actually separate
/// s from t; throws otherwise.
std::vector<EdgeId> make_cut_minimal(const Graph& g, NodeId s, NodeId t,
                                     std::vector<EdgeId> cut,
                                     const EdgeMask& mask = {});

}  // namespace mfd::graph
