// Reachability, shortest paths, and connected components over masked graphs.
//
// Pressure propagation through a chip whose valves are in a given open/closed
// state is exactly reachability over the subgraph of open edges, so these
// routines are the core of the test simulator.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::graph {

/// A path as an alternating description: the ordered node sequence and the
/// ordered edge sequence (|edges| == |nodes| - 1).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
  [[nodiscard]] int length() const { return static_cast<int>(edges.size()); }
};

/// True if `target` is reachable from `source` using enabled edges only.
bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeMask& mask = {});

/// Reusable scratch for the allocation-free reachability overload. A scratch
/// instance must not be shared between threads; each evaluation worker owns
/// its own.
struct TraversalScratch {
  std::vector<char> visited;
  std::vector<NodeId> frontier;
};

/// Allocation-free variant of reachable() for hot loops (fault simulation
/// runs one reachability query per vector x fault): buffers live in the
/// caller-owned scratch and are reused across calls.
bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeMask& mask, TraversalScratch& scratch);

/// All nodes reachable from `source` using enabled edges (including source).
std::vector<NodeId> reachable_set(const Graph& g, NodeId source,
                                  const EdgeMask& mask = {});

/// Breadth-first shortest path (fewest edges) from source to target over
/// enabled edges; nullopt when disconnected.
std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeMask& mask = {});

/// Dijkstra shortest path with non-negative per-edge weights over enabled
/// edges; nullopt when disconnected.
std::optional<Path> shortest_path_weighted(const Graph& g, NodeId source,
                                           NodeId target,
                                           const std::vector<double>& weights,
                                           const EdgeMask& mask = {});

/// Component id per node (-1 never appears); ids are dense starting at 0.
std::vector<int> connected_components(const Graph& g,
                                      const EdgeMask& mask = {});

/// True if removing edge `bridge_candidate` disconnects `source` from
/// `target` in the enabled subgraph. Used to decide whether a stuck-at-0
/// fault on that edge is observable by a path vector.
bool edge_separates(const Graph& g, EdgeId bridge_candidate, NodeId source,
                    NodeId target, const EdgeMask& mask = {});

/// All bridges of the enabled subgraph (edges whose removal increases the
/// number of connected components).
std::vector<EdgeId> bridges(const Graph& g, const EdgeMask& mask = {});

}  // namespace mfd::graph
