// Reachability, shortest paths, and connected components over masked graphs.
//
// Pressure propagation through a chip whose valves are in a given open/closed
// state is exactly reachability over the subgraph of open edges, so these
// routines are the core of the test simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace mfd::graph {

/// A path as an alternating description: the ordered node sequence and the
/// ordered edge sequence (|edges| == |nodes| - 1).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
  [[nodiscard]] int length() const { return static_cast<int>(edges.size()); }
};

/// True if `target` is reachable from `source` using enabled edges only.
bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeMask& mask = {});

/// Reusable scratch for the allocation-free reachability overload. A scratch
/// instance must not be shared between threads; each evaluation worker owns
/// its own.
struct TraversalScratch {
  std::vector<char> visited;
  std::vector<NodeId> frontier;
};

/// Allocation-free variant of reachable() for hot loops (fault simulation
/// runs one reachability query per vector x fault): buffers live in the
/// caller-owned scratch and are reused across calls.
bool reachable(const Graph& g, NodeId source, NodeId target,
               const EdgeMask& mask, TraversalScratch& scratch);

/// All nodes reachable from `source` using enabled edges (including source).
std::vector<NodeId> reachable_set(const Graph& g, NodeId source,
                                  const EdgeMask& mask = {});

/// Breadth-first shortest path (fewest edges) from source to target over
/// enabled edges; nullopt when disconnected.
std::optional<Path> shortest_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeMask& mask = {});

/// Dijkstra shortest path with non-negative per-edge weights over enabled
/// edges; nullopt when disconnected.
std::optional<Path> shortest_path_weighted(const Graph& g, NodeId source,
                                           NodeId target,
                                           const std::vector<double>& weights,
                                           const EdgeMask& mask = {});

/// Component id per node (-1 never appears); ids are dense starting at 0.
std::vector<int> connected_components(const Graph& g,
                                      const EdgeMask& mask = {});

/// True if removing edge `bridge_candidate` disconnects `source` from
/// `target` in the enabled subgraph. Used to decide whether a stuck-at-0
/// fault on that edge is observable by a path vector.
bool edge_separates(const Graph& g, EdgeId bridge_candidate, NodeId source,
                    NodeId target, const EdgeMask& mask = {});

/// One-pass structural analysis of an enabled subgraph: component labels,
/// all bridges, and the DFS intervals needed to answer "does removing this
/// bridge separate a from b?" in O(1). This is the substrate of the batch
/// fault simulator — one analyze_subgraph() per test vector replaces one
/// BFS per (fault, vector) pair. Buffers are reused across analyze calls;
/// an instance must not be shared between threads.
struct SubgraphAnalysis {
  /// Component id per node; ids are dense starting at 0 (roots in node-id
  /// order, matching connected_components()).
  std::vector<int> component;
  int component_count = 0;
  /// Per edge: 1 when the (enabled) edge is a bridge of its component.
  std::vector<char> is_bridge;
  /// Per edge: for a bridge, the DFS-deeper endpoint (root of the subtree
  /// the bridge hangs); kInvalidNode otherwise.
  std::vector<NodeId> bridge_child;
  /// DFS entry/exit times per node (intervals nest, shared counter).
  std::vector<int> tin;
  std::vector<int> tout;

  [[nodiscard]] bool connected(NodeId a, NodeId b) const {
    return component[static_cast<std::size_t>(a)] ==
           component[static_cast<std::size_t>(b)];
  }

  /// True when `x` lies in the DFS subtree rooted at `c`.
  [[nodiscard]] bool in_subtree(NodeId c, NodeId x) const {
    return tin[static_cast<std::size_t>(c)] <=
               tin[static_cast<std::size_t>(x)] &&
           tout[static_cast<std::size_t>(x)] <=
               tout[static_cast<std::size_t>(c)];
  }

  /// True when a and b are connected in the analyzed subgraph AND removing
  /// edge e disconnects them (i.e. e is a bridge on every a-b route).
  [[nodiscard]] bool separates(EdgeId e, NodeId a, NodeId b) const {
    if (!is_bridge[static_cast<std::size_t>(e)] || !connected(a, b)) {
      return false;
    }
    const NodeId child = bridge_child[static_cast<std::size_t>(e)];
    return in_subtree(child, a) != in_subtree(child, b);
  }

  // Internal scratch (lowlink values and the explicit DFS stack), public so
  // the struct stays an aggregate; not meaningful between calls.
  std::vector<int> low;
  struct Frame {
    NodeId node;
    EdgeId via_edge;
    std::uint32_t next_index;
  };
  std::vector<Frame> stack;
};

/// Fills `out` with the component/bridge structure of the enabled subgraph
/// in O(V+E). The empty mask means all edges enabled, as everywhere else.
void analyze_subgraph(const Graph& g, const EdgeMask& mask,
                      SubgraphAnalysis& out);

/// All bridges of the enabled subgraph (edges whose removal increases the
/// number of connected components), in ascending edge-id order.
std::vector<EdgeId> bridges(const Graph& g, const EdgeMask& mask = {});

}  // namespace mfd::graph
