// Test-platform cost accounting.
//
// The paper's motivation is the cost of the test platform: pressure sources,
// pressure meters, and control ports are cumbersome external devices. This
// report quantifies what a DFT result saves — the original multi-port test
// needs a source plus a meter on every other port, the DFT architecture
// exactly one of each — and what it spends (added channels/valves, larger
// vector counts, control sharing instead of new ports).
#pragma once

#include <string>

#include "core/codesign.hpp"

namespace mfd::core {

struct DftCostReport {
  // Test platform devices (pressure sources + meters).
  int test_devices_before = 0;  // original: one per port
  int test_devices_after = 0;   // DFT: one source + one meter
  // Control ports (one per control channel).
  int control_ports_before = 0;
  int control_ports_after = 0;
  // Flow-layer additions.
  int channels_added = 0;
  int valves_added = 0;
  // Test program sizes.
  int vectors_original = 0;  // multi-port test of the original chip
  int vectors_dft = 0;       // single-source single-meter test
  // Application execution times (seconds).
  double exec_original = 0.0;
  double exec_dft = 0.0;

  [[nodiscard]] int test_devices_saved() const {
    return test_devices_before - test_devices_after;
  }
  [[nodiscard]] int control_ports_added() const {
    return control_ports_after - control_ports_before;
  }
  [[nodiscard]] double execution_overhead() const {
    return exec_original > 0.0 ? exec_dft / exec_original - 1.0 : 0.0;
  }
};

/// Builds the cost report for a successful codesign run. The original chip
/// must be the one the codesign started from.
DftCostReport build_cost_report(const arch::Biochip& original,
                                const CodesignResult& result);

/// Renders the report as a short human-readable summary.
std::string render_cost_report(const DftCostReport& report);

}  // namespace mfd::core
