// Design-for-testability codesign engine (the paper's main contribution).
//
// Given a chip and the bioassay it runs, the engine:
//   1. augments the chip with DFT channels/valves so that a single pressure
//      source and a single pressure meter suffice for testing (Section 3,
//      ILP over the virtual connection grid);
//   2. assigns every DFT valve a shared control channel of an original valve
//      so no new control port is needed (Section 4);
//   3. searches configurations and sharing schemes with a two-level PSO,
//      scoring each candidate by the assay's execution time on the augmented
//      chip and rejecting candidates whose sharing breaks the test vectors
//      or the schedule (Section 4.2).
//
// Implementation note: the outer level explores DFT configurations from a
// pool enumerated up front by re-solving the augmentation ILP under no-good
// cuts (each solve excludes all previously found configurations). This keeps
// the number of ILP solves bounded while the PSO still searches the same
// space of near-minimal configurations the paper's outer particles do.
#pragma once

#include <optional>

#include "arch/biochip.hpp"
#include "common/run_control.hpp"
#include "core/evaluation.hpp"
#include "pso/pso.hpp"
#include "sched/scheduler.hpp"
#include "testgen/path_ilp.hpp"
#include "testgen/vector_gen.hpp"

namespace mfd::core {

/// Gives every DFT valve its own dedicated control channel (the
/// "independent control ports available" scenario of Section 2 / Figure 7).
arch::Biochip with_dedicated_controls(const arch::Biochip& augmented);

struct CodesignOptions {
  testgen::PathPlanOptions plan;
  /// Number of distinct DFT configurations enumerated for the outer level.
  int config_pool_size = 4;
  /// Outer PSO swarm (paper: 5 particles, 100 iterations total).
  int outer_particles = 5;
  int outer_iterations = 100;
  /// Inner (valve sharing) PSO; paper uses 5 particles. Few iterations per
  /// outer evaluation: the sub-swarm is warm-started at the outer particle's
  /// current sharing vector, so refinement accumulates across outer
  /// iterations.
  pso::PsoOptions inner{.particles = 5, .iterations = 2, .seed = 99};
  sched::ScheduleOptions sched;
  testgen::VectorGenOptions vectors;
  /// Random-scheme attempts for the "DFT without PSO" baseline.
  int unoptimized_attempts = 200;
  std::uint64_t seed = 2024;
  /// Total evaluation threads (workers + the calling thread) for the batched
  /// fitness pipeline; 0 uses the hardware concurrency, 1 runs the exact
  /// serial pipeline. Results are bit-identical for every value.
  int threads = 0;
  /// Optional deadline/cancellation handle and tracer, borrowed for the run.
  /// Stops are polled only at serial synchronization points, so a truncated
  /// run is reproducible given the same cut-off point. Null disables both.
  const RunControl* control = nullptr;
  /// Optional shared fitness cache, borrowed for the run and injected into
  /// the Evaluator (see core/fitness_cache.hpp). The service layer passes
  /// one per batch so jobs over the same chip × assay reuse each other's
  /// evaluations; null keeps the run's cache private, as in standalone use.
  FitnessCache* cache = nullptr;

  /// Checks every field and reports all violations in one Status (stage
  /// "options", outcome kInvalidOptions); Ok() when the options are usable.
  [[nodiscard]] Status validate() const;
};

struct CodesignResult {
  /// How the run ended. `status.outcome` is kOk for a complete run;
  /// kDeadlineExceeded / kCancelled mark a truncated run that still carries
  /// the best artifacts found so far (when any scheme had been validated
  /// before the stop); kInfeasible / kInvalidOptions carry no artifacts.
  Status status;
  [[nodiscard]] bool ok() const { return status.ok(); }

  /// Canonical ILP configuration (pool entry 0) and the full pool.
  testgen::PathPlan plan;
  std::vector<testgen::PathPlan> pool;
  /// Index into `pool` of the configuration the PSO selected.
  int chosen_config = 0;

  /// Final augmented chip with the optimized sharing applied, and its
  /// schedule. Present whenever a valid sharing scheme was found — also on
  /// deadline/cancel stops that happened after the first valid scheme.
  std::optional<arch::Biochip> chip;
  std::optional<sched::Schedule> schedule;
  SharingScheme sharing;
  testgen::TestSuite tests;

  /// Execution times (seconds): original chip; augmented chip with the first
  /// valid random sharing (no PSO); with the PSO-optimized sharing; with
  /// dedicated control ports for every DFT valve.
  double exec_original = 0.0;
  double exec_dft_unoptimized = 0.0;
  double exec_dft_optimized = 0.0;
  double exec_dft_independent = 0.0;

  /// Best execution time after each outer PSO iteration (Figure 9).
  std::vector<double> convergence;

  int dft_valve_count = 0;
  int shared_valve_count = 0;
  double runtime_seconds = 0.0;
  /// Pipeline counters and stage timings (identical for every thread count
  /// with a fixed seed, wall times excepted).
  EvalStats stats;
  /// Evaluation threads actually used (resolved from CodesignOptions::threads).
  int threads_used = 1;
};

/// Enumerates up to `max_configs` distinct near-minimal DFT configurations
/// by repeatedly solving the augmentation ILP under no-good cuts. The first
/// entry is the canonical minimum; later entries may add one or two more
/// channels. Stops early when no further configuration exists.
std::vector<testgen::PathPlan> enumerate_dft_configurations(
    const arch::Biochip& chip, int max_configs,
    testgen::PathPlanOptions options = {});

/// Runs the full codesign flow. With `options.control` set, a deadline or
/// cancellation unwinds the pipeline at the next serial synchronization
/// point and the result comes back tagged kDeadlineExceeded / kCancelled
/// with the best-so-far artifacts; rerunning with the same seed and the same
/// cut-off point reproduces the truncated result exactly.
CodesignResult run_codesign(const arch::Biochip& chip,
                            const sched::Assay& assay,
                            const CodesignOptions& options = {});

}  // namespace mfd::core
