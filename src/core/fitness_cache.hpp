// Shared, persistent fitness cache for the codesign evaluation pipeline.
//
// The two-level PSO revisits the same (DFT configuration, valve-sharing)
// candidates across sub-swarms, across jobs in one service batch, and —
// because production traffic concentrates on a small set of benchmark
// chips — across daemon restarts. A FitnessCache holds one fitness record
// per *content hash* of everything that determines the evaluation (chip
// structure, assay, scheduling/vector options, configuration augmentation,
// canonical sharing vector; see core/evaluation.cpp), so any evaluator in
// any job — or any process that loaded the same on-disk tier — can reuse a
// result computed elsewhere.
//
// Two tiers:
//   * in-memory: sharded, lock-striped hash maps (16 shards by default), so
//     concurrent jobs in a Dispatcher batch share one cache with minimal
//     contention. A byte budget (`max_bytes`) bounds the footprint with
//     per-shard FIFO eviction — eviction can only cost recomputation, never
//     correctness, because entries are pure functions of their key.
//   * on-disk (optional, `dir` non-empty): append-only segment files. Every
//     persist() writes the entries added since the last one to a fresh
//     segment via write-to-temp + atomic rename, so readers never observe a
//     half-written file; load() (run by the constructor) validates magic,
//     version, length and checksum per segment and rejects — rather than
//     trusts — anything corrupted or truncated. A restarted `mfdft_jobd
//     --cache-dir` therefore starts warm with exactly the records that were
//     fully written.
//
// Determinism contract (held by the evaluator, enforced here by the value
// type): a record stores only the pure-function outcome (makespan,
// schedule_ok, tests_ok) — there is no way to persist an aborted
// evaluation, and serving a hit is byte-for-byte equivalent to recomputing.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"

namespace mfd::core {

/// The pure-function outcome of one fitness evaluation, as stored in the
/// cache. Deliberately has no `aborted` member: truncated work is never
/// representable here (Evaluation::aborted gates insertion upstream).
struct FitnessRecord {
  double makespan = 0.0;
  bool schedule_ok = false;
  bool tests_ok = false;

  [[nodiscard]] bool operator==(const FitnessRecord&) const = default;
};

struct FitnessCacheOptions {
  /// Directory of the persistent tier; empty = in-memory only. Created on
  /// demand; segments present at construction are loaded (and validated).
  std::string dir;
  /// Approximate in-memory budget in bytes (0 = unbounded). When a shard
  /// outgrows its slice, its oldest entries are evicted FIFO.
  std::size_t max_bytes = 256ull << 20;
  /// Lock stripes; more shards = less contention between concurrent jobs.
  int shards = 16;
};

/// Monotonic counters; snapshot via FitnessCache::stats().
struct FitnessCacheStats {
  /// Lookups served / missed (process lifetime of this cache object).
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Entries inserted (first-writer; duplicate puts of an existing key are
  /// not counted) and entries evicted under the byte budget.
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  /// Persistent tier: entries/segments accepted at load time, segments
  /// rejected as corrupt or truncated, entries written by persist().
  std::int64_t disk_entries_loaded = 0;
  std::int64_t disk_segments_loaded = 0;
  std::int64_t disk_segments_rejected = 0;
  std::int64_t disk_entries_persisted = 0;
  /// Stale ".tmp" segment files (a writer that died between write and
  /// rename) removed at load time.
  std::int64_t disk_temps_swept = 0;
};

/// Thread-safe two-tier fitness cache. One instance is typically shared by
/// every job of a service batch (injected through EvaluatorOptions); a
/// default-constructed instance serves as a job-private cache.
class FitnessCache {
 public:
  explicit FitnessCache(FitnessCacheOptions options = {});

  FitnessCache(const FitnessCache&) = delete;
  FitnessCache& operator=(const FitnessCache&) = delete;

  /// Looks `key` up; fills *value on a hit. Counts hits/misses.
  [[nodiscard]] bool get(const Hash128& key, FitnessRecord* value);

  /// Inserts key -> value unless the key is already present (entries are
  /// pure functions of their key, so first-writer-wins is exact). New
  /// entries are queued for the next persist() when a dir is configured.
  void put(const Hash128& key, const FitnessRecord& value);

  /// Entries currently resident in memory.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] FitnessCacheStats stats() const;

  [[nodiscard]] const FitnessCacheOptions& options() const {
    return options_;
  }

  /// Writes every entry added since the last persist() to one fresh segment
  /// file (atomic rename; concurrent processes never clobber each other).
  /// No-op without a configured dir or pending entries. Returns kOk, or an
  /// I/O failure as Outcome::kInternalError (stage "fitness_cache").
  Status persist();

  /// The segment-file suffix, exposed for tooling and tests.
  static constexpr const char* kSegmentSuffix = ".mfc";

  /// How old a leftover "<segment>.tmp" file must be before load() sweeps
  /// it: long past any plausible in-flight persist(), so only writers that
  /// died mid-persist are cleaned up.
  static constexpr std::chrono::minutes kStaleTempAge{15};

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Hash128, FitnessRecord, Hash128Hasher> map;
    /// Insertion order for FIFO eviction under the byte budget.
    std::deque<Hash128> order;
  };

  [[nodiscard]] Shard& shard_of(const Hash128& key) {
    return *shards_[static_cast<std::size_t>(key.hi) &
                    (shards_.size() - 1)];
  }

  /// Inserts into the right shard; returns true when the key was new.
  /// `from_disk` entries are not re-queued for persistence.
  bool insert(const Hash128& key, const FitnessRecord& value, bool from_disk);

  /// Loads and validates every segment in options_.dir (constructor path).
  void load();

  FitnessCacheOptions options_;
  std::size_t max_entries_per_shard_ = 0;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex pending_mutex_;
  std::vector<std::pair<Hash128, FitnessRecord>> pending_;

  mutable std::mutex stats_mutex_;
  FitnessCacheStats stats_;
};

}  // namespace mfd::core
