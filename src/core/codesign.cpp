#include "core/codesign.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/rng.hpp"

namespace mfd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Cached evaluation of one (configuration, sharing) candidate.
struct Evaluation {
  double makespan = kInf;
  bool schedule_ok = false;
  bool tests_ok = false;
};

// Evaluates a candidate per Section 4.1/4.2: quality is the execution time,
// or infinity when the sharing breaks the schedule or the test vectors.
class Evaluator {
 public:
  Evaluator(const sched::Assay& assay, const CodesignOptions& options)
      : assay_(assay), options_(options) {}

  void add_config(const arch::Biochip& augmented,
                  const testgen::PathPlan& plan) {
    configs_.push_back(&augmented);
    plans_.push_back(&plan);
  }

  [[nodiscard]] int config_count() const {
    return static_cast<int>(configs_.size());
  }
  [[nodiscard]] const arch::Biochip& config(int index) const {
    return *configs_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const testgen::PathPlan& plan(int index) const {
    return *plans_[static_cast<std::size_t>(index)];
  }

  const Evaluation& evaluate(int config_index, const SharingScheme& scheme) {
    const auto key = std::make_pair(config_index, scheme.partner);
    const auto cached = cache_.find(key);
    if (cached != cache_.end()) {
      ++cache_hits;
      return cached->second;
    }
    ++evaluations;

    Evaluation eval;
    const arch::Biochip shared = apply_sharing(config(config_index), scheme);
    const sched::Schedule schedule =
        sched::schedule_assay(shared, assay_, options_.sched);
    eval.schedule_ok = schedule.feasible;
    if (schedule.feasible) {
      testgen::VectorGenOptions vopt = options_.vectors;
      vopt.plan = plans_[static_cast<std::size_t>(config_index)];
      const auto suite = testgen::generate_test_suite(
          shared, plan(config_index).source, plan(config_index).meter, vopt);
      eval.tests_ok = suite.has_value();
      if (eval.tests_ok) eval.makespan = schedule.makespan;
    }
    return cache_.emplace(key, eval).first->second;
  }

  int evaluations = 0;
  int cache_hits = 0;

 private:
  const sched::Assay& assay_;
  const CodesignOptions& options_;
  std::vector<const arch::Biochip*> configs_;
  std::vector<const testgen::PathPlan*> plans_;
  std::map<std::pair<int, std::vector<arch::ValveId>>, Evaluation> cache_;
};

// Original (non-DFT) valve ids of a chip, the sharing-partner candidates.
std::vector<arch::ValveId> original_valves(const arch::Biochip& chip) {
  std::vector<arch::ValveId> ids;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (!chip.valve(v).is_dft) ids.push_back(v);
  }
  return ids;
}

std::vector<arch::ValveId> dft_valves(const arch::Biochip& chip) {
  std::vector<arch::ValveId> ids;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (chip.valve(v).is_dft) ids.push_back(v);
  }
  return ids;
}

// Decodes an inner-PSO position into a sharing scheme for the given chip.
SharingScheme decode_sharing(const arch::Biochip& augmented,
                             const std::vector<double>& position) {
  const std::vector<arch::ValveId> originals = original_valves(augmented);
  SharingScheme scheme;
  scheme.partner.reserve(position.size());
  for (double coordinate : position) {
    scheme.partner.push_back(
        originals[static_cast<std::size_t>(pso::decode_index(
            coordinate, static_cast<int>(originals.size())))]);
  }
  return scheme;
}

}  // namespace

arch::Biochip apply_sharing(const arch::Biochip& augmented,
                            const SharingScheme& scheme) {
  arch::Biochip chip = augmented;
  const std::vector<arch::ValveId> dft = dft_valves(chip);
  MFD_REQUIRE(scheme.partner.size() == dft.size(),
              "apply_sharing(): one partner per DFT valve required");
  for (std::size_t i = 0; i < dft.size(); ++i) {
    const arch::ValveId partner = scheme.partner[i];
    MFD_REQUIRE(!chip.valve(partner).is_dft,
                "apply_sharing(): partner must be an original valve");
    chip.share_control(dft[i], partner);
  }
  return chip;
}

arch::Biochip with_dedicated_controls(const arch::Biochip& augmented) {
  arch::Biochip chip = augmented;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (chip.valve(v).is_dft && chip.valve(v).control == arch::kInvalidControl) {
      chip.assign_dedicated_control(v);
    }
  }
  return chip;
}

std::vector<testgen::PathPlan> enumerate_dft_configurations(
    const arch::Biochip& chip, int max_configs,
    testgen::PathPlanOptions options) {
  MFD_REQUIRE(max_configs >= 1,
              "enumerate_dft_configurations(): need at least one config");
  std::vector<testgen::PathPlan> pool;
  int min_count = -1;
  for (int round = 0; round < max_configs; ++round) {
    const testgen::PathPlan plan = testgen::plan_dft_paths(chip, options);
    if (!plan.feasible) break;
    if (plan.added_edges.empty()) {
      // Already single-source single-meter testable: unique configuration.
      pool.push_back(plan);
      break;
    }
    if (min_count == -1) {
      min_count = static_cast<int>(plan.added_edges.size());
    } else if (static_cast<int>(plan.added_edges.size()) > min_count + 2) {
      break;  // configurations getting too expensive; stop enumerating
    }
    options.forbidden_added_sets.push_back(plan.added_edges);
    pool.push_back(std::move(plan));
  }
  return pool;
}

CodesignResult run_codesign(const arch::Biochip& chip,
                            const sched::Assay& assay,
                            const CodesignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  CodesignResult result;

  // Baseline: the unmodified chip.
  const sched::Schedule original_schedule =
      sched::schedule_assay(chip, assay, options.sched);
  if (!original_schedule.feasible) {
    result.failure_reason = "assay cannot be scheduled on the original chip";
    result.runtime_seconds = elapsed();
    return result;
  }
  result.exec_original = original_schedule.makespan;

  // DFT configurations (outer search space).
  result.pool =
      enumerate_dft_configurations(chip, options.config_pool_size,
                                   options.plan);
  if (result.pool.empty()) {
    result.failure_reason =
        "no single-source single-meter configuration found within |P| limit";
    result.runtime_seconds = elapsed();
    return result;
  }
  result.plan = result.pool.front();
  result.dft_valve_count =
      static_cast<int>(result.plan.added_edges.size());

  std::vector<arch::Biochip> augmented;
  augmented.reserve(result.pool.size());
  for (const testgen::PathPlan& plan : result.pool) {
    augmented.push_back(testgen::apply_plan(chip, plan));
  }

  // Figure 7 baseline: DFT valves with their own control ports.
  const sched::Schedule independent_schedule = sched::schedule_assay(
      with_dedicated_controls(augmented.front()), assay, options.sched);
  result.exec_dft_independent = independent_schedule.feasible
                                    ? independent_schedule.makespan
                                    : kInf;

  Evaluator evaluator(assay, options);
  for (std::size_t i = 0; i < augmented.size(); ++i) {
    evaluator.add_config(augmented[i],
                         result.pool[i]);
  }

  const int n_dft = result.dft_valve_count;

  // "DFT without PSO": the first randomly drawn sharing scheme that passes
  // both validations on the canonical configuration.
  {
    Rng rng(options.seed ^ 0x5eedu);
    const std::vector<arch::ValveId> originals =
        original_valves(augmented.front());
    result.exec_dft_unoptimized = kInf;
    for (int attempt = 0; attempt < options.unoptimized_attempts; ++attempt) {
      SharingScheme scheme;
      for (int i = 0; i < n_dft; ++i) {
        scheme.partner.push_back(
            originals[rng.index(originals.size())]);
      }
      const Evaluation& eval = evaluator.evaluate(0, scheme);
      if (eval.makespan < kInf) {
        result.exec_dft_unoptimized = eval.makespan;
        break;
      }
    }
  }

  // Two-level PSO (Section 4.2). An outer particle's position is
  // X = [X^a | X^s]: a continuous selector whose argmax picks the DFT
  // configuration, concatenated with the valve-sharing coordinates. Each
  // outer evaluation runs a short sub-PSO over sharing schemes seeded at the
  // particle's current X^s (paper step (2)); the sub-PSO's best X^s is
  // written back into the particle (step (3)), so sharing quality improves
  // across outer iterations and Figure 9's convergence emerges.
  const int pool_size = evaluator.config_count();
  int max_dft = 0;
  for (int c = 0; c < pool_size; ++c) {
    max_dft = std::max(
        max_dft, static_cast<int>(evaluator.plan(c).added_edges.size()));
  }
  const std::size_t selector_dims = static_cast<std::size_t>(pool_size);
  const std::size_t dims = selector_dims + static_cast<std::size_t>(max_dft);

  Rng outer_rng(options.seed);
  struct OuterParticle {
    std::vector<double> position;
    std::vector<double> velocity;
    std::vector<double> best_position;
    double best_value = kInf;
  };
  std::vector<OuterParticle> swarm(
      static_cast<std::size_t>(options.outer_particles));
  std::vector<double> global_best_position;
  double global_best = kInf;
  SharingScheme best_scheme;
  int best_config = 0;

  std::uint64_t inner_seed = options.seed * 7919u + 13u;
  auto outer_evaluate = [&](OuterParticle& particle) {
    const auto selector_begin = particle.position.begin();
    const int config_index =
        pool_size == 1
            ? 0
            : static_cast<int>(std::max_element(
                                   selector_begin,
                                   selector_begin +
                                       static_cast<std::ptrdiff_t>(
                                           selector_dims)) -
                               selector_begin);
    const int config_dft = static_cast<int>(
        evaluator.plan(config_index).added_edges.size());

    // Sub-PSO over X^s, warm-started at the particle's current X^s.
    std::vector<double> sharing_seed(
        particle.position.begin() +
            static_cast<std::ptrdiff_t>(selector_dims),
        particle.position.begin() +
            static_cast<std::ptrdiff_t>(selector_dims + config_dft));
    pso::PsoOptions inner = options.inner;
    inner.seed = inner_seed++;
    const pso::PsoResult inner_result = pso::minimize(
        config_dft,
        [&](const std::vector<double>& inner_position) {
          const SharingScheme scheme =
              decode_sharing(evaluator.config(config_index), inner_position);
          return evaluator.evaluate(config_index, scheme).makespan;
        },
        inner, {sharing_seed});

    // Step (3): adopt the sub-PSO's best sharing vector.
    if (!inner_result.best_position.empty()) {
      std::copy(inner_result.best_position.begin(),
                inner_result.best_position.end(),
                particle.position.begin() +
                    static_cast<std::ptrdiff_t>(selector_dims));
    }
    if (inner_result.best_value < global_best) {
      global_best = inner_result.best_value;
      best_scheme = decode_sharing(evaluator.config(config_index),
                                   inner_result.best_position);
      best_config = config_index;
    }
    return inner_result.best_value;
  };

  for (OuterParticle& particle : swarm) {
    particle.position.resize(dims);
    particle.velocity.assign(dims, 0.0);
    for (double& x : particle.position) x = outer_rng.uniform();
    particle.best_value = outer_evaluate(particle);
    particle.best_position = particle.position;
    if (particle.best_value <= global_best) {
      global_best_position = particle.position;
    }
  }
  result.convergence.push_back(global_best);

  constexpr double kOmega = 0.72;
  constexpr double kC1 = 1.49;
  constexpr double kC2 = 1.49;
  constexpr double kVmax = 0.3;
  for (int iteration = 1; iteration < options.outer_iterations; ++iteration) {
    for (OuterParticle& particle : swarm) {
      for (std::size_t d = 0; d < dims; ++d) {
        double v = kOmega * particle.velocity[d] +
                   kC1 * outer_rng.uniform() *
                       (particle.best_position[d] - particle.position[d]);
        if (!global_best_position.empty()) {
          v += kC2 * outer_rng.uniform() *
               (global_best_position[d] - particle.position[d]);
        }
        particle.velocity[d] = std::clamp(v, -kVmax, kVmax);
        particle.position[d] =
            std::clamp(particle.position[d] + particle.velocity[d], 0.0, 1.0);
      }
      const double value = outer_evaluate(particle);
      if (value < particle.best_value) {
        particle.best_value = value;
        particle.best_position = particle.position;
      }
      if (value <= global_best) {
        global_best_position = particle.position;
      }
    }
    result.convergence.push_back(global_best);
  }

  result.evaluations = evaluator.evaluations;
  result.cache_hits = evaluator.cache_hits;

  if (global_best == kInf) {
    result.failure_reason = "no valid valve-sharing scheme found";
    result.runtime_seconds = elapsed();
    return result;
  }

  // Assemble the final artifacts from the best candidate.
  result.chosen_config = best_config;
  result.plan = result.pool[static_cast<std::size_t>(best_config)];
  result.dft_valve_count =
      static_cast<int>(result.plan.added_edges.size());
  result.shared_valve_count = result.dft_valve_count;
  result.sharing = best_scheme;
  result.chip = apply_sharing(
      augmented[static_cast<std::size_t>(best_config)], best_scheme);
  result.exec_dft_optimized = global_best;
  result.schedule = sched::schedule_assay(result.chip, assay, options.sched);
  testgen::VectorGenOptions vopt = options.vectors;
  vopt.plan = &result.plan;
  auto suite = testgen::generate_test_suite(result.chip, result.plan.source,
                                            result.plan.meter, vopt);
  MFD_ASSERT(suite.has_value(),
             "optimized sharing scheme failed final test regeneration");
  result.tests = std::move(*suite);
  result.success = true;
  result.runtime_seconds = elapsed();
  return result;
}

}  // namespace mfd::core
