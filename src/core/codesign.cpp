#include "core/codesign.hpp"

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"

namespace mfd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Original (non-DFT) valve ids of a chip, the sharing-partner candidates.
std::vector<arch::ValveId> original_valves(const arch::Biochip& chip) {
  std::vector<arch::ValveId> ids;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (!chip.valve(v).is_dft) ids.push_back(v);
  }
  return ids;
}

std::vector<arch::ValveId> dft_valves(const arch::Biochip& chip) {
  std::vector<arch::ValveId> ids;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (chip.valve(v).is_dft) ids.push_back(v);
  }
  return ids;
}

// Decodes an inner-PSO position into a sharing scheme for the given chip.
SharingScheme decode_sharing(const arch::Biochip& augmented,
                             const std::vector<double>& position) {
  const std::vector<arch::ValveId> originals = original_valves(augmented);
  SharingScheme scheme;
  scheme.partner.reserve(position.size());
  for (double coordinate : position) {
    scheme.partner.push_back(
        originals[static_cast<std::size_t>(pso::decode_index(
            coordinate, static_cast<int>(originals.size())))]);
  }
  return scheme;
}

}  // namespace

Status CodesignOptions::validate() const {
  std::string problems;
  const auto flag = [&problems](bool bad, const char* what) {
    if (!bad) return;
    if (!problems.empty()) problems += "; ";
    problems += what;
  };
  flag(config_pool_size < 1, "config_pool_size must be >= 1");
  flag(outer_particles < 1, "outer_particles must be >= 1");
  flag(outer_iterations < 1, "outer_iterations must be >= 1");
  flag(inner.particles < 1, "inner.particles must be >= 1");
  flag(inner.iterations < 0, "inner.iterations must be >= 0");
  flag(!(inner.vmax > 0.0), "inner.vmax must be > 0");
  flag(unoptimized_attempts < 0, "unoptimized_attempts must be >= 0");
  flag(threads < 0, "threads must be >= 0");
  flag(plan.initial_paths < 1, "plan.initial_paths must be >= 1");
  flag(plan.max_paths < plan.initial_paths,
       "plan.max_paths must be >= plan.initial_paths");
  flag(!(plan.time_limit_seconds > 0.0),
       "plan.time_limit_seconds must be > 0");
  flag(!(sched.transport_time_per_edge > 0.0),
       "sched.transport_time_per_edge must be > 0");
  flag(sched.route_retries < 0, "sched.route_retries must be >= 0");
  flag(sched.detour_tolerance < 0, "sched.detour_tolerance must be >= 0");
  flag(!(sched.time_limit > 0.0), "sched.time_limit must be > 0");
  flag(vectors.attempts_per_fault < 1,
       "vectors.attempts_per_fault must be >= 1");
  if (problems.empty()) return Status::Ok();
  return Status::Fail(Outcome::kInvalidOptions, "options",
                      std::move(problems));
}

arch::Biochip apply_sharing(const arch::Biochip& augmented,
                            const SharingScheme& scheme) {
  arch::Biochip chip = augmented;
  const std::vector<arch::ValveId> dft = dft_valves(chip);
  MFD_REQUIRE(scheme.partner.size() == dft.size(),
              "apply_sharing(): one partner per DFT valve required");
  for (std::size_t i = 0; i < dft.size(); ++i) {
    const arch::ValveId partner = scheme.partner[i];
    MFD_REQUIRE(!chip.valve(partner).is_dft,
                "apply_sharing(): partner must be an original valve");
    chip.share_control(dft[i], partner);
  }
  return chip;
}

arch::Biochip with_dedicated_controls(const arch::Biochip& augmented) {
  arch::Biochip chip = augmented;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (chip.valve(v).is_dft && chip.valve(v).control == arch::kInvalidControl) {
      chip.assign_dedicated_control(v);
    }
  }
  return chip;
}

std::vector<testgen::PathPlan> enumerate_dft_configurations(
    const arch::Biochip& chip, int max_configs,
    testgen::PathPlanOptions options) {
  MFD_REQUIRE(max_configs >= 1,
              "enumerate_dft_configurations(): need at least one config");
  std::vector<testgen::PathPlan> pool;
  int min_count = -1;
  for (int round = 0; round < max_configs; ++round) {
    const testgen::PathPlan plan = testgen::plan_dft_paths(chip, options);
    if (!plan.feasible) break;
    if (plan.added_edges.empty()) {
      // Already single-source single-meter testable: unique configuration.
      pool.push_back(plan);
      break;
    }
    if (min_count == -1) {
      min_count = static_cast<int>(plan.added_edges.size());
    } else if (static_cast<int>(plan.added_edges.size()) > min_count + 2) {
      break;  // configurations getting too expensive; stop enumerating
    }
    options.forbidden_added_sets.push_back(plan.added_edges);
    pool.push_back(std::move(plan));
  }
  return pool;
}

CodesignResult run_codesign(const arch::Biochip& chip,
                            const sched::Assay& assay,
                            const CodesignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  CodesignResult result;
  result.status = options.validate();
  if (!result.status.ok()) return result;

  const RunControl* const control = options.control;
  Tracer* const tracer = tracer_of(control);
  const auto run_span = trace_span(tracer, "codesign");

  // First stop observed at a serial synchronization point. Once set, the
  // pipeline unwinds; everything already computed stays in `result`.
  std::optional<Status> stop;
  auto check_stop = [&](const char* stage) {
    if (stop) return true;
    if (control == nullptr) return false;
    const StopReason reason = control->check();
    if (reason == StopReason::kNone) return false;
    stop = Status::Fail(outcome_of(reason), stage,
                        reason == StopReason::kCancelled
                            ? "run cancelled"
                            : "deadline exceeded");
    return true;
  };

  // Baseline schedules and the final artifact assembly run outside the
  // evaluator; their scheduler/testgen executions are attributed here.
  EvalStats baseline;

  // Stage options with the control threaded in, so a stop aborts in-flight
  // baseline work too. The final assembly deliberately uses the caller's
  // plain options: it regenerates already-validated artifacts and must not
  // be truncated.
  sched::ScheduleOptions sched_opts = options.sched;
  sched_opts.control = control;
  testgen::PathPlanOptions plan_opts = options.plan;
  plan_opts.control = control;

  if (check_stop("start")) {
    result.status = *stop;
    result.runtime_seconds = elapsed();
    return result;
  }

  // Baseline: the unmodified chip.
  const sched::Schedule original_schedule = [&] {
    const auto span = trace_span(tracer, "baseline_schedule");
    const StageTimer timer;
    sched::Schedule schedule = sched::schedule_assay(chip, assay, sched_opts);
    baseline.schedule_seconds += timer.seconds();
    ++baseline.scheduler_runs;
    return schedule;
  }();
  if (check_stop("baseline_schedule")) {
    result.status = *stop;
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }
  if (!original_schedule.feasible) {
    result.status =
        Status::Fail(Outcome::kInfeasible, "baseline_schedule",
                     "assay cannot be scheduled on the original chip");
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }
  result.exec_original = original_schedule.makespan;

  // DFT configurations (outer search space).
  {
    const auto span = trace_span(tracer, "enumerate_configurations");
    result.pool = enumerate_dft_configurations(
        chip, options.config_pool_size, plan_opts);
    trace_counter(tracer, "config_pool",
                  static_cast<std::int64_t>(result.pool.size()));
    trace_counter(
        tracer, "fallback_plans",
        static_cast<std::int64_t>(std::count_if(
            result.pool.begin(), result.pool.end(),
            [](const testgen::PathPlan& p) {
              return p.method == testgen::PathPlan::Method::kGreedyFallback;
            })));
  }
  if (check_stop("enumerate_configurations")) {
    // Degrade gracefully: a deadline during enumeration may still have
    // produced usable plans (possibly via the greedy fallback); keep the
    // best-so-far artifacts alongside the stop status.
    result.status = *stop;
    if (!result.pool.empty()) {
      result.plan = result.pool.front();
      result.dft_valve_count =
          static_cast<int>(result.plan.added_edges.size());
    }
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }
  if (result.pool.empty()) {
    result.status = Status::Fail(
        Outcome::kInfeasible, "enumerate_configurations",
        "no single-source single-meter configuration found within |P| limit");
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }
  result.plan = result.pool.front();
  result.dft_valve_count =
      static_cast<int>(result.plan.added_edges.size());

  std::vector<arch::Biochip> augmented;
  augmented.reserve(result.pool.size());
  for (const testgen::PathPlan& plan : result.pool) {
    augmented.push_back(testgen::apply_plan(chip, plan));
  }

  // Figure 7 baseline: DFT valves with their own control ports.
  {
    const auto span = trace_span(tracer, "independent_schedule");
    const sched::Schedule independent_schedule = sched::schedule_assay(
        with_dedicated_controls(augmented.front()), assay, sched_opts);
    ++baseline.scheduler_runs;
    result.exec_dft_independent = independent_schedule.feasible
                                      ? independent_schedule.makespan
                                      : kInf;
  }
  if (check_stop("independent_schedule")) {
    result.status = *stop;
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }

  ThreadPool pool(options.threads == 0 ? ThreadPool::hardware_threads()
                                       : options.threads);
  result.threads_used = pool.thread_count();
  Evaluator evaluator(EvaluatorOptions{.assay = &assay,
                                       .sched = options.sched,
                                       .vectors = options.vectors,
                                       .pool = &pool,
                                       .control = control,
                                       .cache = options.cache});
  for (std::size_t i = 0; i < augmented.size(); ++i) {
    evaluator.add_config(augmented[i],
                         result.pool[i]);
  }

  const int n_dft = result.dft_valve_count;

  auto finalize_stats = [&] {
    result.stats = evaluator.stats();
    result.stats += baseline;
  };

  // "DFT without PSO": the first randomly drawn sharing scheme that passes
  // both validations on the canonical configuration.
  {
    const auto span = trace_span(tracer, "unoptimized_search");
    Rng rng(options.seed ^ 0x5eedu);
    const std::vector<arch::ValveId> originals =
        original_valves(augmented.front());
    result.exec_dft_unoptimized = kInf;
    for (int attempt = 0; attempt < options.unoptimized_attempts; ++attempt) {
      // Checked before the RNG draw, so the attempt sequence up to the
      // cut-off is the same as in an unbounded run.
      if (check_stop("unoptimized_search")) break;
      SharingScheme scheme;
      for (int i = 0; i < n_dft; ++i) {
        scheme.partner.push_back(
            originals[rng.index(originals.size())]);
      }
      const Evaluation eval = evaluator.evaluate(0, scheme);
      if (!eval.aborted && eval.makespan < kInf) {
        result.exec_dft_unoptimized = eval.makespan;
        break;
      }
    }
  }
  if (stop) {
    result.status = *stop;
    finalize_stats();
    result.runtime_seconds = elapsed();
    return result;
  }

  // Two-level PSO (Section 4.2). An outer particle's position is
  // X = [X^a | X^s]: a continuous selector whose argmax picks the DFT
  // configuration, concatenated with the valve-sharing coordinates. Each
  // outer evaluation runs a short sub-PSO over sharing schemes seeded at the
  // particle's current X^s (paper step (2)); the sub-PSO's best X^s is
  // written back into the particle (step (3)), so sharing quality improves
  // across outer iterations and Figure 9's convergence emerges.
  //
  // The outer loop itself stays serial (it owns the RNG streams and the
  // inner-seed sequence); parallelism lives inside the inner sub-swarm's
  // batched fitness evaluation.
  const int pool_size = evaluator.config_count();
  int max_dft = 0;
  for (int c = 0; c < pool_size; ++c) {
    max_dft = std::max(
        max_dft, static_cast<int>(evaluator.plan(c).added_edges.size()));
  }
  const std::size_t selector_dims = static_cast<std::size_t>(pool_size);
  const std::size_t dims = selector_dims + static_cast<std::size_t>(max_dft);

  Rng outer_rng(options.seed);
  struct OuterParticle {
    std::vector<double> position;
    std::vector<double> velocity;
    std::vector<double> best_position;
    double best_value = kInf;
  };
  std::vector<OuterParticle> swarm(
      static_cast<std::size_t>(options.outer_particles));
  std::vector<double> global_best_position;
  double global_best = kInf;
  SharingScheme best_scheme;
  int best_config = 0;

  std::uint64_t inner_seed = options.seed * 7919u + 13u;
  std::vector<SharingScheme> batch_schemes;
  auto outer_evaluate = [&](OuterParticle& particle) {
    const auto selector_begin = particle.position.begin();
    const int config_index =
        pool_size == 1
            ? 0
            : static_cast<int>(std::max_element(
                                   selector_begin,
                                   selector_begin +
                                       static_cast<std::ptrdiff_t>(
                                           selector_dims)) -
                               selector_begin);
    const int config_dft = static_cast<int>(
        evaluator.plan(config_index).added_edges.size());

    // Sub-PSO over X^s, warm-started at the particle's current X^s. The
    // whole sub-swarm is scored per iteration as one batch, which the
    // evaluator spreads over the thread pool.
    std::vector<double> sharing_seed(
        particle.position.begin() +
            static_cast<std::ptrdiff_t>(selector_dims),
        particle.position.begin() +
            static_cast<std::ptrdiff_t>(selector_dims + config_dft));
    pso::PsoOptions inner = options.inner;
    inner.seed = inner_seed++;
    inner.control = control;
    const pso::PsoResult inner_result = pso::minimize(
        config_dft,
        [&](std::span<const std::vector<double>> positions,
            std::span<double> values) {
          batch_schemes.clear();
          for (const std::vector<double>& inner_position : positions) {
            batch_schemes.push_back(decode_sharing(
                evaluator.config(config_index), inner_position));
          }
          evaluator.evaluate_batch(config_index, batch_schemes, values);
        },
        inner, {sharing_seed});
    ++evaluator.stats().outer_evaluations;
    evaluator.stats().inner_evaluations += inner_result.evaluations;

    if (inner_result.stopped_early) {
      // A stop fired inside the sub-swarm: which of its batch entries
      // aborted is timing-dependent, so the whole inner result is discarded
      // — the truncated run's bests come only from completed evaluations.
      return kInf;
    }

    // Step (3): adopt the sub-PSO's best sharing vector.
    if (!inner_result.best_position.empty()) {
      std::copy(inner_result.best_position.begin(),
                inner_result.best_position.end(),
                particle.position.begin() +
                    static_cast<std::ptrdiff_t>(selector_dims));
    }
    if (inner_result.best_value < global_best) {
      global_best = inner_result.best_value;
      best_scheme = decode_sharing(evaluator.config(config_index),
                                   inner_result.best_position);
      best_config = config_index;
    }
    return inner_result.best_value;
  };

  {
    const auto span = trace_span(tracer, "outer_iteration");
    for (OuterParticle& particle : swarm) {
      if (check_stop("outer_pso")) break;
      particle.position.resize(dims);
      particle.velocity.assign(dims, 0.0);
      for (double& x : particle.position) x = outer_rng.uniform();
      particle.best_value = outer_evaluate(particle);
      particle.best_position = particle.position;
      if (particle.best_value <= global_best) {
        global_best_position = particle.position;
      }
    }
  }
  if (!stop) {
    result.convergence.push_back(global_best);
    trace_counter(tracer, "outer_best_x1000",
                  global_best == kInf
                      ? -1
                      : static_cast<std::int64_t>(global_best * 1000.0));
    if (control != nullptr) {
      control->report_progress(
          {"outer_pso", 1, options.outer_iterations, global_best});
    }
  }

  constexpr double kOmega = 0.72;
  constexpr double kC1 = 1.49;
  constexpr double kC2 = 1.49;
  constexpr double kVmax = 0.3;
  for (int iteration = 1;
       !stop && iteration < options.outer_iterations; ++iteration) {
    const auto span = trace_span(tracer, "outer_iteration");
    for (OuterParticle& particle : swarm) {
      // Checked before the velocity update so no RNG draws are consumed for
      // a particle that will not be evaluated.
      if (check_stop("outer_pso")) break;
      for (std::size_t d = 0; d < dims; ++d) {
        double v = kOmega * particle.velocity[d] +
                   kC1 * outer_rng.uniform() *
                       (particle.best_position[d] - particle.position[d]);
        if (!global_best_position.empty()) {
          v += kC2 * outer_rng.uniform() *
               (global_best_position[d] - particle.position[d]);
        }
        particle.velocity[d] = std::clamp(v, -kVmax, kVmax);
        particle.position[d] =
            std::clamp(particle.position[d] + particle.velocity[d], 0.0, 1.0);
      }
      const double value = outer_evaluate(particle);
      if (value < particle.best_value) {
        particle.best_value = value;
        particle.best_position = particle.position;
      }
      if (value <= global_best) {
        global_best_position = particle.position;
      }
    }
    if (stop) break;
    result.convergence.push_back(global_best);
    trace_counter(tracer, "outer_best_x1000",
                  global_best == kInf
                      ? -1
                      : static_cast<std::int64_t>(global_best * 1000.0));
    if (control != nullptr) {
      control->report_progress({"outer_pso", iteration + 1,
                                options.outer_iterations, global_best});
    }
  }

  if (global_best == kInf) {
    // Nothing valid found: on a stop that is the stop's fault, otherwise the
    // search space genuinely holds no valid sharing scheme.
    result.status = stop ? *stop
                         : Status::Fail(Outcome::kInfeasible, "outer_pso",
                                        "no valid valve-sharing scheme found");
    finalize_stats();
    result.runtime_seconds = elapsed();
    return result;
  }

  // Assemble the final artifacts from the best candidate (best-so-far when
  // stopped). The regeneration runs without the control: the scheme already
  // passed both validations, so this is deterministic replay, not search.
  {
    const auto span = trace_span(tracer, "assemble");
    result.chosen_config = best_config;
    result.plan = result.pool[static_cast<std::size_t>(best_config)];
    result.dft_valve_count =
        static_cast<int>(result.plan.added_edges.size());
    result.shared_valve_count = result.dft_valve_count;
    result.sharing = best_scheme;
    result.chip = apply_sharing(
        augmented[static_cast<std::size_t>(best_config)], best_scheme);
    result.exec_dft_optimized = global_best;
    result.schedule = sched::schedule_assay(*result.chip, assay,
                                            options.sched);
    ++baseline.scheduler_runs;
    testgen::VectorGenOptions vopt = options.vectors;
    vopt.plan = &result.plan;
    auto suite = testgen::generate_test_suite(
        *result.chip, result.plan.source, result.plan.meter, vopt);
    ++baseline.testgen_runs;
    MFD_ASSERT(suite.has_value(),
               "optimized sharing scheme failed final test regeneration");
    result.tests = std::move(*suite);
  }
  result.status = stop ? *stop : Status::Ok();
  finalize_stats();
  result.runtime_seconds = elapsed();
  return result;
}

}  // namespace mfd::core
