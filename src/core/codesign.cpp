#include "core/codesign.hpp"

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"

namespace mfd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Original (non-DFT) valve ids of a chip, the sharing-partner candidates.
std::vector<arch::ValveId> original_valves(const arch::Biochip& chip) {
  std::vector<arch::ValveId> ids;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (!chip.valve(v).is_dft) ids.push_back(v);
  }
  return ids;
}

std::vector<arch::ValveId> dft_valves(const arch::Biochip& chip) {
  std::vector<arch::ValveId> ids;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (chip.valve(v).is_dft) ids.push_back(v);
  }
  return ids;
}

// Decodes an inner-PSO position into a sharing scheme for the given chip.
SharingScheme decode_sharing(const arch::Biochip& augmented,
                             const std::vector<double>& position) {
  const std::vector<arch::ValveId> originals = original_valves(augmented);
  SharingScheme scheme;
  scheme.partner.reserve(position.size());
  for (double coordinate : position) {
    scheme.partner.push_back(
        originals[static_cast<std::size_t>(pso::decode_index(
            coordinate, static_cast<int>(originals.size())))]);
  }
  return scheme;
}

}  // namespace

arch::Biochip apply_sharing(const arch::Biochip& augmented,
                            const SharingScheme& scheme) {
  arch::Biochip chip = augmented;
  const std::vector<arch::ValveId> dft = dft_valves(chip);
  MFD_REQUIRE(scheme.partner.size() == dft.size(),
              "apply_sharing(): one partner per DFT valve required");
  for (std::size_t i = 0; i < dft.size(); ++i) {
    const arch::ValveId partner = scheme.partner[i];
    MFD_REQUIRE(!chip.valve(partner).is_dft,
                "apply_sharing(): partner must be an original valve");
    chip.share_control(dft[i], partner);
  }
  return chip;
}

arch::Biochip with_dedicated_controls(const arch::Biochip& augmented) {
  arch::Biochip chip = augmented;
  for (arch::ValveId v = 0; v < chip.valve_count(); ++v) {
    if (chip.valve(v).is_dft && chip.valve(v).control == arch::kInvalidControl) {
      chip.assign_dedicated_control(v);
    }
  }
  return chip;
}

std::vector<testgen::PathPlan> enumerate_dft_configurations(
    const arch::Biochip& chip, int max_configs,
    testgen::PathPlanOptions options) {
  MFD_REQUIRE(max_configs >= 1,
              "enumerate_dft_configurations(): need at least one config");
  std::vector<testgen::PathPlan> pool;
  int min_count = -1;
  for (int round = 0; round < max_configs; ++round) {
    const testgen::PathPlan plan = testgen::plan_dft_paths(chip, options);
    if (!plan.feasible) break;
    if (plan.added_edges.empty()) {
      // Already single-source single-meter testable: unique configuration.
      pool.push_back(plan);
      break;
    }
    if (min_count == -1) {
      min_count = static_cast<int>(plan.added_edges.size());
    } else if (static_cast<int>(plan.added_edges.size()) > min_count + 2) {
      break;  // configurations getting too expensive; stop enumerating
    }
    options.forbidden_added_sets.push_back(plan.added_edges);
    pool.push_back(std::move(plan));
  }
  return pool;
}

CodesignResult run_codesign(const arch::Biochip& chip,
                            const sched::Assay& assay,
                            const CodesignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  CodesignResult result;
  // Baseline schedules and the final artifact assembly run outside the
  // evaluator; their scheduler/testgen executions are attributed here.
  EvalStats baseline;

  // Baseline: the unmodified chip.
  const sched::Schedule original_schedule = [&] {
    const StageTimer timer;
    sched::Schedule schedule = sched::schedule_assay(chip, assay,
                                                     options.sched);
    baseline.schedule_seconds += timer.seconds();
    ++baseline.scheduler_runs;
    return schedule;
  }();
  if (!original_schedule.feasible) {
    result.failure_reason = "assay cannot be scheduled on the original chip";
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }
  result.exec_original = original_schedule.makespan;

  // DFT configurations (outer search space).
  result.pool =
      enumerate_dft_configurations(chip, options.config_pool_size,
                                   options.plan);
  if (result.pool.empty()) {
    result.failure_reason =
        "no single-source single-meter configuration found within |P| limit";
    result.stats = baseline;
    result.runtime_seconds = elapsed();
    return result;
  }
  result.plan = result.pool.front();
  result.dft_valve_count =
      static_cast<int>(result.plan.added_edges.size());

  std::vector<arch::Biochip> augmented;
  augmented.reserve(result.pool.size());
  for (const testgen::PathPlan& plan : result.pool) {
    augmented.push_back(testgen::apply_plan(chip, plan));
  }

  // Figure 7 baseline: DFT valves with their own control ports.
  const sched::Schedule independent_schedule = sched::schedule_assay(
      with_dedicated_controls(augmented.front()), assay, options.sched);
  ++baseline.scheduler_runs;
  result.exec_dft_independent = independent_schedule.feasible
                                    ? independent_schedule.makespan
                                    : kInf;

  ThreadPool pool(options.threads == 0 ? ThreadPool::hardware_threads()
                                       : options.threads);
  result.threads_used = pool.thread_count();
  Evaluator evaluator(assay, options.sched, options.vectors, pool);
  for (std::size_t i = 0; i < augmented.size(); ++i) {
    evaluator.add_config(augmented[i],
                         result.pool[i]);
  }

  const int n_dft = result.dft_valve_count;

  // "DFT without PSO": the first randomly drawn sharing scheme that passes
  // both validations on the canonical configuration.
  {
    Rng rng(options.seed ^ 0x5eedu);
    const std::vector<arch::ValveId> originals =
        original_valves(augmented.front());
    result.exec_dft_unoptimized = kInf;
    for (int attempt = 0; attempt < options.unoptimized_attempts; ++attempt) {
      SharingScheme scheme;
      for (int i = 0; i < n_dft; ++i) {
        scheme.partner.push_back(
            originals[rng.index(originals.size())]);
      }
      const Evaluation eval = evaluator.evaluate(0, scheme);
      if (eval.makespan < kInf) {
        result.exec_dft_unoptimized = eval.makespan;
        break;
      }
    }
  }

  // Two-level PSO (Section 4.2). An outer particle's position is
  // X = [X^a | X^s]: a continuous selector whose argmax picks the DFT
  // configuration, concatenated with the valve-sharing coordinates. Each
  // outer evaluation runs a short sub-PSO over sharing schemes seeded at the
  // particle's current X^s (paper step (2)); the sub-PSO's best X^s is
  // written back into the particle (step (3)), so sharing quality improves
  // across outer iterations and Figure 9's convergence emerges.
  //
  // The outer loop itself stays serial (it owns the RNG streams and the
  // inner-seed sequence); parallelism lives inside the inner sub-swarm's
  // batched fitness evaluation.
  const int pool_size = evaluator.config_count();
  int max_dft = 0;
  for (int c = 0; c < pool_size; ++c) {
    max_dft = std::max(
        max_dft, static_cast<int>(evaluator.plan(c).added_edges.size()));
  }
  const std::size_t selector_dims = static_cast<std::size_t>(pool_size);
  const std::size_t dims = selector_dims + static_cast<std::size_t>(max_dft);

  Rng outer_rng(options.seed);
  struct OuterParticle {
    std::vector<double> position;
    std::vector<double> velocity;
    std::vector<double> best_position;
    double best_value = kInf;
  };
  std::vector<OuterParticle> swarm(
      static_cast<std::size_t>(options.outer_particles));
  std::vector<double> global_best_position;
  double global_best = kInf;
  SharingScheme best_scheme;
  int best_config = 0;

  std::uint64_t inner_seed = options.seed * 7919u + 13u;
  std::vector<SharingScheme> batch_schemes;
  auto outer_evaluate = [&](OuterParticle& particle) {
    const auto selector_begin = particle.position.begin();
    const int config_index =
        pool_size == 1
            ? 0
            : static_cast<int>(std::max_element(
                                   selector_begin,
                                   selector_begin +
                                       static_cast<std::ptrdiff_t>(
                                           selector_dims)) -
                               selector_begin);
    const int config_dft = static_cast<int>(
        evaluator.plan(config_index).added_edges.size());

    // Sub-PSO over X^s, warm-started at the particle's current X^s. The
    // whole sub-swarm is scored per iteration as one batch, which the
    // evaluator spreads over the thread pool.
    std::vector<double> sharing_seed(
        particle.position.begin() +
            static_cast<std::ptrdiff_t>(selector_dims),
        particle.position.begin() +
            static_cast<std::ptrdiff_t>(selector_dims + config_dft));
    pso::PsoOptions inner = options.inner;
    inner.seed = inner_seed++;
    const pso::PsoResult inner_result = pso::minimize(
        config_dft,
        [&](std::span<const std::vector<double>> positions,
            std::span<double> values) {
          batch_schemes.clear();
          for (const std::vector<double>& inner_position : positions) {
            batch_schemes.push_back(decode_sharing(
                evaluator.config(config_index), inner_position));
          }
          evaluator.evaluate_batch(config_index, batch_schemes, values);
        },
        inner, {sharing_seed});
    ++evaluator.stats().outer_evaluations;
    evaluator.stats().inner_evaluations += inner_result.evaluations;

    // Step (3): adopt the sub-PSO's best sharing vector.
    if (!inner_result.best_position.empty()) {
      std::copy(inner_result.best_position.begin(),
                inner_result.best_position.end(),
                particle.position.begin() +
                    static_cast<std::ptrdiff_t>(selector_dims));
    }
    if (inner_result.best_value < global_best) {
      global_best = inner_result.best_value;
      best_scheme = decode_sharing(evaluator.config(config_index),
                                   inner_result.best_position);
      best_config = config_index;
    }
    return inner_result.best_value;
  };

  for (OuterParticle& particle : swarm) {
    particle.position.resize(dims);
    particle.velocity.assign(dims, 0.0);
    for (double& x : particle.position) x = outer_rng.uniform();
    particle.best_value = outer_evaluate(particle);
    particle.best_position = particle.position;
    if (particle.best_value <= global_best) {
      global_best_position = particle.position;
    }
  }
  result.convergence.push_back(global_best);

  constexpr double kOmega = 0.72;
  constexpr double kC1 = 1.49;
  constexpr double kC2 = 1.49;
  constexpr double kVmax = 0.3;
  for (int iteration = 1; iteration < options.outer_iterations; ++iteration) {
    for (OuterParticle& particle : swarm) {
      for (std::size_t d = 0; d < dims; ++d) {
        double v = kOmega * particle.velocity[d] +
                   kC1 * outer_rng.uniform() *
                       (particle.best_position[d] - particle.position[d]);
        if (!global_best_position.empty()) {
          v += kC2 * outer_rng.uniform() *
               (global_best_position[d] - particle.position[d]);
        }
        particle.velocity[d] = std::clamp(v, -kVmax, kVmax);
        particle.position[d] =
            std::clamp(particle.position[d] + particle.velocity[d], 0.0, 1.0);
      }
      const double value = outer_evaluate(particle);
      if (value < particle.best_value) {
        particle.best_value = value;
        particle.best_position = particle.position;
      }
      if (value <= global_best) {
        global_best_position = particle.position;
      }
    }
    result.convergence.push_back(global_best);
  }

  auto finalize_stats = [&] {
    result.stats = evaluator.stats();
    result.stats += baseline;
    result.evaluations = static_cast<int>(result.stats.evaluations);
    result.cache_hits = static_cast<int>(result.stats.cache_hits);
  };

  if (global_best == kInf) {
    result.failure_reason = "no valid valve-sharing scheme found";
    finalize_stats();
    result.runtime_seconds = elapsed();
    return result;
  }

  // Assemble the final artifacts from the best candidate.
  result.chosen_config = best_config;
  result.plan = result.pool[static_cast<std::size_t>(best_config)];
  result.dft_valve_count =
      static_cast<int>(result.plan.added_edges.size());
  result.shared_valve_count = result.dft_valve_count;
  result.sharing = best_scheme;
  result.chip = apply_sharing(
      augmented[static_cast<std::size_t>(best_config)], best_scheme);
  result.exec_dft_optimized = global_best;
  result.schedule = sched::schedule_assay(result.chip, assay, options.sched);
  ++baseline.scheduler_runs;
  testgen::VectorGenOptions vopt = options.vectors;
  vopt.plan = &result.plan;
  auto suite = testgen::generate_test_suite(result.chip, result.plan.source,
                                            result.plan.meter, vopt);
  ++baseline.testgen_runs;
  MFD_ASSERT(suite.has_value(),
             "optimized sharing scheme failed final test regeneration");
  result.tests = std::move(*suite);
  result.success = true;
  finalize_stats();
  result.runtime_seconds = elapsed();
  return result;
}

}  // namespace mfd::core
