#include "core/fitness_cache.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace mfd::core {
namespace fs = std::filesystem;

namespace {

// Segment wire format (little-endian u64 words throughout):
//   [0]       magic "MFDFITC1"
//   [1]       entry count N
//   [2..2+4N) N records of 4 words each: key.hi, key.lo,
//             bit_cast<u64>(makespan), flags (bit0 schedule_ok,
//             bit1 tests_ok; other bits must be zero)
//   [last]    checksum: splitmix64 fold over words [1..last)
constexpr std::uint64_t kSegmentMagic = 0x314354494644464dull;  // "MFDFITC1"
constexpr std::uint64_t kFlagScheduleOk = 1ull << 0;
constexpr std::uint64_t kFlagTestsOk = 1ull << 1;
constexpr std::size_t kWordsPerRecord = 4;

// Per-entry memory estimate for the byte budget: map node (key + value +
// bucket/link overhead) plus the FIFO deque slot.
constexpr std::size_t kBytesPerEntry = 96;

std::uint64_t fold_checksum(std::uint64_t acc, std::uint64_t word) {
  return splitmix64(acc ^ word) + word;
}

std::uint64_t read_word(const unsigned char* bytes) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    word |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return word;
}

void write_word(std::uint64_t word, std::string* out) {
  for (std::size_t i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((word >> (8 * i)) & 0xff));
  }
}

int process_id() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(::getpid());
#endif
}

}  // namespace

FitnessCache::FitnessCache(FitnessCacheOptions options)
    : options_(std::move(options)) {
  int shards = options_.shards < 1 ? 1 : options_.shards;
  // Power-of-two shard count so shard_of() can mask instead of mod.
  shards = static_cast<int>(std::bit_ceil(static_cast<unsigned>(shards)));
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.max_bytes != 0) {
    const std::size_t total = options_.max_bytes / kBytesPerEntry;
    max_entries_per_shard_ = total / shards_.size();
    if (max_entries_per_shard_ == 0) max_entries_per_shard_ = 1;
  }
  if (!options_.dir.empty()) load();
}

bool FitnessCache::get(const Hash128& key, FitnessRecord* value) {
  Shard& shard = shard_of(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (value != nullptr) *value = it->second;
      hit = true;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

void FitnessCache::put(const Hash128& key, const FitnessRecord& value) {
  insert(key, value, /*from_disk=*/false);
}

bool FitnessCache::insert(const Hash128& key, const FitnessRecord& value,
                          bool from_disk) {
  Shard& shard = shard_of(key);
  bool inserted = false;
  std::int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, fresh] = shard.map.emplace(key, value);
    inserted = fresh;
    if (fresh) {
      shard.order.push_back(key);
      while (max_entries_per_shard_ != 0 &&
             shard.order.size() > max_entries_per_shard_) {
        shard.map.erase(shard.order.front());
        shard.order.pop_front();
        ++evicted;
      }
    }
  }
  if (inserted && !from_disk && !options_.dir.empty()) {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace_back(key, value);
  }
  if (inserted || evicted != 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (inserted) ++stats_.insertions;
    stats_.evictions += evicted;
  }
  return inserted;
}

std::size_t FitnessCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

FitnessCacheStats FitnessCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void FitnessCache::load() {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  std::vector<fs::path> segments;
  std::vector<fs::path> temps;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() == kSegmentSuffix) {
      segments.push_back(entry.path());
    } else if (entry.path().extension() == ".tmp" &&
               fs::path(entry.path().stem()).extension() == kSegmentSuffix) {
      temps.push_back(entry.path());
    }
  }
  if (ec) return;  // unreadable dir: start cold, persist() will retry I/O

  // Sweep leftover write temps: a persist() that died between write and
  // rename leaves "<segment>.mfc.tmp" behind forever (the extension filter
  // above skips it, so it used to just accumulate). Only temps old enough
  // that no live writer can still own them are removed — a concurrent
  // process mid-persist keeps its fresh temp.
  const auto now = fs::file_time_type::clock::now();
  for (const fs::path& temp : temps) {
    std::error_code temp_ec;
    const auto written = fs::last_write_time(temp, temp_ec);
    if (temp_ec || now - written < kStaleTempAge) continue;
    if (fs::remove(temp, temp_ec) && !temp_ec) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.disk_temps_swept;
    }
  }
  // Deterministic load order (directory iteration order is unspecified).
  std::sort(segments.begin(), segments.end());

  for (const fs::path& path : segments) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const bool read_ok = in.good() || in.eof();

    auto reject = [&] {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.disk_segments_rejected;
    };
    if (!read_ok || bytes.size() < 3 * 8 || bytes.size() % 8 != 0) {
      reject();
      continue;
    }
    const auto* words = reinterpret_cast<const unsigned char*>(bytes.data());
    const std::size_t word_count = bytes.size() / 8;
    if (read_word(words) != kSegmentMagic) {
      reject();
      continue;
    }
    const std::uint64_t count = read_word(words + 8);
    if (word_count != 2 + count * kWordsPerRecord + 1) {
      reject();
      continue;
    }
    std::uint64_t checksum = fold_checksum(0, count);
    for (std::size_t w = 2; w < word_count - 1; ++w) {
      checksum = fold_checksum(checksum, read_word(words + 8 * w));
    }
    if (checksum != read_word(words + 8 * (word_count - 1))) {
      reject();
      continue;
    }

    bool valid = true;
    std::vector<std::pair<Hash128, FitnessRecord>> records;
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const unsigned char* rec = words + 8 * (2 + i * kWordsPerRecord);
      const std::uint64_t flags = read_word(rec + 24);
      if ((flags & ~(kFlagScheduleOk | kFlagTestsOk)) != 0) {
        valid = false;
        break;
      }
      Hash128 key{read_word(rec), read_word(rec + 8)};
      FitnessRecord record{std::bit_cast<double>(read_word(rec + 16)),
                           (flags & kFlagScheduleOk) != 0,
                           (flags & kFlagTestsOk) != 0};
      records.emplace_back(key, record);
    }
    if (!valid) {
      reject();
      continue;
    }
    std::int64_t loaded = 0;
    for (const auto& [key, record] : records) {
      if (insert(key, record, /*from_disk=*/true)) ++loaded;
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.disk_segments_loaded;
    stats_.disk_entries_loaded += loaded;
  }
}

Status FitnessCache::persist() {
  if (options_.dir.empty()) return Status::Ok();
  std::vector<std::pair<Hash128, FitnessRecord>> entries;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (pending_.empty()) return Status::Ok();
    entries.swap(pending_);
  }

  std::string bytes;
  bytes.reserve(8 * (3 + entries.size() * kWordsPerRecord));
  write_word(kSegmentMagic, &bytes);
  const std::uint64_t count = entries.size();
  write_word(count, &bytes);
  std::uint64_t checksum = fold_checksum(0, count);
  auto emit = [&](std::uint64_t word) {
    write_word(word, &bytes);
    checksum = fold_checksum(checksum, word);
  };
  for (const auto& [key, record] : entries) {
    emit(key.hi);
    emit(key.lo);
    emit(std::bit_cast<std::uint64_t>(record.makespan));
    emit((record.schedule_ok ? kFlagScheduleOk : 0) |
         (record.tests_ok ? kFlagTestsOk : 0));
  }
  write_word(checksum, &bytes);

  auto fail = [&](const std::string& message) {
    // Put the entries back so a later persist() can retry.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.insert(pending_.begin(), entries.begin(), entries.end());
    return Status::Fail(Outcome::kInternalError, "fitness_cache", message);
  };

  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) return fail("create_directories: " + ec.message());
  // PID + process-wide counter keeps concurrent writers — worker processes
  // sharing one --cache-dir, or several caches in one process — on distinct
  // filenames; the existence check covers a recycled PID meeting an old
  // directory.
  static std::atomic<std::uint64_t> sequence{0};
  fs::path final_path;
  do {
    const std::string name =
        "seg-" + std::to_string(process_id()) + "-" +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed)) +
        kSegmentSuffix;
    final_path = fs::path(options_.dir) / name;
  } while (fs::exists(final_path));
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ignore;
      fs::remove(tmp_path, ignore);
      return fail("write failed: " + tmp_path.string());
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp_path, ignore);
    return fail("rename: " + ec.message());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.disk_entries_persisted += static_cast<std::int64_t>(count);
  }
  return Status::Ok();
}

}  // namespace mfd::core
