#include "core/report.hpp"

#include <sstream>

#include "common/text_table.hpp"
#include "testgen/vector_gen.hpp"

namespace mfd::core {

DftCostReport build_cost_report(const arch::Biochip& original,
                                const CodesignResult& result) {
  MFD_REQUIRE(result.ok() && result.chip.has_value(),
              "build_cost_report(): codesign result must be successful");
  DftCostReport report;
  // Multi-port test: each port carries either the source or a meter.
  report.test_devices_before = original.port_count();
  report.test_devices_after = 2;
  report.control_ports_before = original.control_count();
  report.control_ports_after = result.chip->control_count();
  report.channels_added = result.dft_valve_count;
  report.valves_added = result.dft_valve_count;
  report.vectors_dft = result.tests.size();
  if (const auto original_suite =
          testgen::generate_test_suite_multiport(original)) {
    report.vectors_original = original_suite->size();
  }
  report.exec_original = result.exec_original;
  report.exec_dft = result.exec_dft_optimized;
  return report;
}

std::string render_cost_report(const DftCostReport& report) {
  TextTable table;
  table.set_header({"metric", "original", "DFT", "delta"});
  table.add_row({"pressure sources + meters",
                 std::to_string(report.test_devices_before),
                 std::to_string(report.test_devices_after),
                 std::to_string(-report.test_devices_saved())});
  table.add_row({"control ports",
                 std::to_string(report.control_ports_before),
                 std::to_string(report.control_ports_after),
                 std::to_string(report.control_ports_added())});
  table.add_row({"channels/valves", "-",
                 "+" + std::to_string(report.channels_added), ""});
  table.add_row({"test vectors", std::to_string(report.vectors_original),
                 std::to_string(report.vectors_dft),
                 std::to_string(report.vectors_dft -
                                report.vectors_original)});
  table.add_row({"execution time [s]", format_double(report.exec_original, 0),
                 format_double(report.exec_dft, 0),
                 format_double(report.exec_dft - report.exec_original, 0)});
  std::ostringstream out;
  out << table.str();
  out << "test devices saved: " << report.test_devices_saved()
      << ", control ports added: " << report.control_ports_added()
      << ", execution overhead: "
      << format_double(report.execution_overhead() * 100.0, 1) << "%\n";
  return out.str();
}

}  // namespace mfd::core
