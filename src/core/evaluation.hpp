// Memoizing, parallel fitness evaluation for the codesign engine.
//
// One (DFT configuration, valve-sharing scheme) candidate is scored by
// scheduling the assay on the shared chip and regenerating the test suite
// (Section 4.1/4.2's validations). Candidates recur heavily during the
// two-level PSO — sub-swarms revisit sharing vectors that decode to the same
// scheme — so every result is memoized, keyed by a stable 128-bit content
// hash of everything that determines it: the augmented chip's structure, the
// assay, the scheduling/vector-generation options, the ILP path plan, and
// the canonical sharing vector (see common/hash.hpp).
//
// The cache has two tiers:
//   * a private per-evaluator map — the default, and the source of the
//     deterministic `cache_hits` counter: it only ever holds keys this
//     evaluator has itself resolved, so its hits cannot depend on what other
//     jobs happen to have computed;
//   * an optional shared core::FitnessCache injected via EvaluatorOptions
//     (typically one per service batch, possibly disk-backed). A shared-tier
//     hit skips the recompute but — because the evaluation is a pure
//     function of the content-hashed inputs — yields bit-identical values,
//     and the logical counters (evaluations, scheduler_runs, testgen_runs)
//     advance exactly as if the work had run. Only the non-serialized
//     EvalStats::shared_hits counter records the physical saving, which is
//     what keeps per-job results byte-identical with the shared cache on,
//     off, or pre-warmed.
//
// Batches are evaluated in three phases so the outcome is independent of the
// thread count:
//   1. serially resolve both cache tiers and in-batch duplicates (in batch
//      order) — this fixes every counter before any worker runs;
//   2. compute the unique misses on the thread pool, each runner using its
//      own sched::EvaluationContext (the evaluation itself is a pure
//      function of the candidate: scheduler and vector generator are seeded
//      from the options, never from shared state);
//   3. serially publish the results into both tiers and fill the outputs.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "arch/biochip.hpp"
#include "common/eval_stats.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "core/fitness_cache.hpp"
#include "sched/scheduler.hpp"
#include "testgen/path_ilp.hpp"
#include "testgen/vector_gen.hpp"

namespace mfd::core {

/// A valve-sharing scheme: for each DFT valve (in valve-id order), the
/// original valve whose control channel it shares. The partner vector is
/// already canonical (one entry per DFT valve, fixed order), so it doubles
/// as the memoization key.
struct SharingScheme {
  std::vector<arch::ValveId> partner;

  [[nodiscard]] bool operator==(const SharingScheme&) const = default;
};

/// Outcome of evaluating one (configuration, sharing scheme) candidate.
struct Evaluation {
  /// Execution time of the assay, or +infinity when the candidate fails
  /// either validation.
  double makespan = std::numeric_limits<double>::infinity();
  /// The assay could be scheduled under the sharing scheme.
  bool schedule_ok = false;
  /// A complete test suite exists under the sharing scheme.
  bool tests_ok = false;
  /// A RunControl stop was observed while (or before) this candidate was
  /// computed: the value is not trustworthy and is never memoized (in either
  /// tier), so a truncated run's cache holds only deterministic entries.
  bool aborted = false;
};

/// Everything an Evaluator needs. The referenced assay and thread pool (and
/// every configuration added later) must outlive the evaluator; control and
/// cache are borrowed too, and both are optional.
struct EvaluatorOptions {
  /// Required: the bioassay being scheduled.
  const sched::Assay* assay = nullptr;
  sched::ScheduleOptions sched;
  testgen::VectorGenOptions vectors;
  /// Required: workers for evaluate_batch().
  ThreadPool* pool = nullptr;
  /// Optional cooperative deadline/cancel, threaded into the scheduler and
  /// testgen runs so a stop aborts in-flight evaluations.
  const RunControl* control = nullptr;
  /// Optional shared fitness cache (one per service batch, possibly
  /// disk-backed). nullptr — the default — keeps the evaluator fully
  /// private, reproducing standalone behavior exactly.
  FitnessCache* cache = nullptr;
};

/// Thread-safe memoizing evaluator over a pool of DFT configurations.
/// evaluate()/evaluate_batch() may be called from one thread at a time (the
/// optimizer loop); parallelism happens inside evaluate_batch(), which farms
/// cache misses out to the pool.
class Evaluator {
 public:
  explicit Evaluator(const EvaluatorOptions& options);

  void add_config(const arch::Biochip& augmented,
                  const testgen::PathPlan& plan);

  [[nodiscard]] int config_count() const {
    return static_cast<int>(configs_.size());
  }
  [[nodiscard]] const arch::Biochip& config(int index) const {
    return *configs_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const testgen::PathPlan& plan(int index) const {
    return *plans_[static_cast<std::size_t>(index)];
  }

  /// The stable content-hash key of one candidate — what both cache tiers
  /// key on. Exposed for tests and tooling.
  [[nodiscard]] Hash128 candidate_key(int config_index,
                                      const SharingScheme& scheme) const;

  /// Scores one candidate, serving it from the cache tiers when possible.
  Evaluation evaluate(int config_index, const SharingScheme& scheme);

  /// Scores a whole batch: makespans[i] receives the score of schemes[i].
  /// Unique cache misses are computed in parallel on the pool; results,
  /// counters and the cache contents are identical for every thread count.
  void evaluate_batch(int config_index, std::span<const SharingScheme> schemes,
                      std::span<double> makespans);

  /// Cumulative counters (merged across workers after every batch).
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  [[nodiscard]] EvalStats& stats() { return stats_; }

 private:
  /// Uncached evaluation: schedule, then (if feasible) regenerate vectors.
  /// Pure function of the candidate; `slot` picks the scratch context.
  Evaluation compute(int config_index, const SharingScheme& scheme,
                     std::size_t slot, EvalStats& stats);

  /// Probes the shared tier; on a hit reconstructs the evaluation, caches it
  /// privately and advances the logical counters as if it had been computed.
  [[nodiscard]] bool probe_shared(const Hash128& key, Evaluation* out);

  /// Publishes a freshly computed, non-aborted evaluation to both tiers.
  void publish(const Hash128& key, const Evaluation& eval);

  const sched::Assay& assay_;
  sched::ScheduleOptions sched_options_;
  testgen::VectorGenOptions vector_options_;
  ThreadPool& pool_;
  const RunControl* control_ = nullptr;
  FitnessCache* shared_cache_ = nullptr;

  std::vector<const arch::Biochip*> configs_;
  std::vector<const testgen::PathPlan*> plans_;
  /// Partially fed content hasher per configuration: assay + options + chip
  /// + plan, missing only the sharing vector. Forked per candidate.
  std::vector<ContentHasher> config_prefix_;

  /// One scheduler scratch context and stats block per pool slot.
  std::vector<sched::EvaluationContext> contexts_;
  std::vector<EvalStats> slot_stats_;

  /// Private tier: everything this evaluator has resolved itself.
  std::unordered_map<Hash128, Evaluation, Hash128Hasher> cache_;
  EvalStats stats_;
};

/// Applies a sharing scheme to a copy of the augmented chip. The chip's DFT
/// valves must be control-less; `partner` entries must reference original
/// (non-DFT) valves.
arch::Biochip apply_sharing(const arch::Biochip& augmented,
                            const SharingScheme& scheme);

}  // namespace mfd::core
