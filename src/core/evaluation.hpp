// Memoizing, parallel fitness evaluation for the codesign engine.
//
// One (DFT configuration, valve-sharing scheme) candidate is scored by
// scheduling the assay on the shared chip and regenerating the test suite
// (Section 4.1/4.2's validations). Candidates recur heavily during the
// two-level PSO — sub-swarms revisit sharing vectors that decode to the same
// scheme — so every result is memoized under (config index, partner vector).
//
// Batches are evaluated in three phases so the outcome is independent of the
// thread count:
//   1. serially dedupe against the cache and within the batch (in batch
//      order) — this fixes `evaluations` and `cache_hits` before any worker
//      runs;
//   2. compute the unique misses on the thread pool, each runner using its
//      own sched::EvaluationContext (the evaluation itself is a pure
//      function of the candidate: scheduler and vector generator are seeded
//      from the options, never from shared state);
//   3. serially insert the results and fill the output values.
#pragma once

#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "arch/biochip.hpp"
#include "common/eval_stats.hpp"
#include "common/thread_pool.hpp"
#include "sched/scheduler.hpp"
#include "testgen/path_ilp.hpp"
#include "testgen/vector_gen.hpp"

namespace mfd::core {

/// A valve-sharing scheme: for each DFT valve (in valve-id order), the
/// original valve whose control channel it shares. The partner vector is
/// already canonical (one entry per DFT valve, fixed order), so it doubles
/// as the memoization key.
struct SharingScheme {
  std::vector<arch::ValveId> partner;

  [[nodiscard]] bool operator==(const SharingScheme&) const = default;
};

/// Outcome of evaluating one (configuration, sharing scheme) candidate.
struct Evaluation {
  /// Execution time of the assay, or +infinity when the candidate fails
  /// either validation.
  double makespan = std::numeric_limits<double>::infinity();
  /// The assay could be scheduled under the sharing scheme.
  bool schedule_ok = false;
  /// A complete test suite exists under the sharing scheme.
  bool tests_ok = false;
  /// A RunControl stop was observed while (or before) this candidate was
  /// computed: the value is not trustworthy and is never memoized, so a
  /// truncated run's cache holds only deterministic entries.
  bool aborted = false;
};

/// Thread-safe memoizing evaluator over a pool of DFT configurations.
/// evaluate()/evaluate_batch() may be called from one thread at a time (the
/// optimizer loop); parallelism happens inside evaluate_batch(), which farms
/// cache misses out to the pool.
class Evaluator {
 public:
  /// The assay, options and every added configuration must outlive the
  /// evaluator; `pool` is shared with the caller. When `control` is given it
  /// is threaded into the scheduler/testgen runs so a deadline or cancel
  /// aborts in-flight evaluations.
  Evaluator(const sched::Assay& assay,
            const sched::ScheduleOptions& sched_options,
            const testgen::VectorGenOptions& vector_options, ThreadPool& pool,
            const RunControl* control = nullptr);

  void add_config(const arch::Biochip& augmented,
                  const testgen::PathPlan& plan);

  [[nodiscard]] int config_count() const {
    return static_cast<int>(configs_.size());
  }
  [[nodiscard]] const arch::Biochip& config(int index) const {
    return *configs_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] const testgen::PathPlan& plan(int index) const {
    return *plans_[static_cast<std::size_t>(index)];
  }

  /// Scores one candidate, serving it from the cache when possible.
  Evaluation evaluate(int config_index, const SharingScheme& scheme);

  /// Scores a whole batch: makespans[i] receives the score of schemes[i].
  /// Unique cache misses are computed in parallel on the pool; results,
  /// counters and the cache contents are identical for every thread count.
  void evaluate_batch(int config_index, std::span<const SharingScheme> schemes,
                      std::span<double> makespans);

  /// Cumulative counters (merged across workers after every batch).
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  [[nodiscard]] EvalStats& stats() { return stats_; }

 private:
  struct CacheKey {
    int config = 0;
    std::vector<arch::ValveId> partner;

    [[nodiscard]] bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      std::size_t h = std::hash<int>{}(key.config);
      for (const arch::ValveId v : key.partner) {
        h ^= std::hash<int>{}(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  /// Uncached evaluation: schedule, then (if feasible) regenerate vectors.
  /// Pure function of the candidate; `slot` picks the scratch context.
  Evaluation compute(int config_index, const SharingScheme& scheme,
                     std::size_t slot, EvalStats& stats);

  const sched::Assay& assay_;
  sched::ScheduleOptions sched_options_;
  testgen::VectorGenOptions vector_options_;
  ThreadPool& pool_;
  const RunControl* control_ = nullptr;

  std::vector<const arch::Biochip*> configs_;
  std::vector<const testgen::PathPlan*> plans_;

  /// One scheduler scratch context and stats block per pool slot.
  std::vector<sched::EvaluationContext> contexts_;
  std::vector<EvalStats> slot_stats_;

  std::shared_mutex cache_mutex_;
  std::unordered_map<CacheKey, Evaluation, CacheKeyHash> cache_;
  EvalStats stats_;
};

/// Applies a sharing scheme to a copy of the augmented chip. The chip's DFT
/// valves must be control-less; `partner` entries must reference original
/// (non-DFT) valves.
arch::Biochip apply_sharing(const arch::Biochip& augmented,
                            const SharingScheme& scheme);

}  // namespace mfd::core
