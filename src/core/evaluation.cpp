#include "core/evaluation.hpp"

#include "arch/serialize.hpp"
#include "common/error.hpp"

namespace mfd::core {

namespace {

/// Everything shared by every configuration of one evaluator: the assay
/// structure and the option fields that influence schedule or test-suite
/// results. Trace/control members are excluded on purpose — they affect
/// logging and truncation (never cached), not values.
ContentHasher base_hasher(const sched::Assay& assay,
                          const sched::ScheduleOptions& sched,
                          const testgen::VectorGenOptions& vectors) {
  ContentHasher h;
  h.mix_bytes(assay.name());
  h.mix_int(assay.operation_count());
  for (const sched::Operation& op : assay.operations()) {
    h.mix_int(static_cast<int>(op.kind));
    h.mix_double(op.duration);
    h.mix_bytes(op.name);
  }
  const graph::Digraph& dag = assay.dag();
  for (graph::NodeId n = 0; n < dag.node_count(); ++n) {
    h.mix_vector(dag.successors(n));
  }

  h.mix_double(sched.transport_time_per_edge);
  h.mix_int(sched.route_retries);
  h.mix_int(sched.detour_tolerance);
  h.mix_double(sched.time_limit);
  h.mix(sched.seed);

  h.mix_int(vectors.attempts_per_fault);
  h.mix(vectors.seed);
  h.mix_bool(vectors.use_bulk_cuts);
  return h;
}

}  // namespace

Evaluator::Evaluator(const EvaluatorOptions& options)
    : assay_(*options.assay),
      sched_options_(options.sched),
      vector_options_(options.vectors),
      pool_(*options.pool),
      control_(options.control),
      shared_cache_(options.cache),
      contexts_(static_cast<std::size_t>(options.pool->thread_count())),
      slot_stats_(static_cast<std::size_t>(options.pool->thread_count())) {
  MFD_REQUIRE(options.assay != nullptr, "EvaluatorOptions::assay is required");
  MFD_REQUIRE(options.pool != nullptr, "EvaluatorOptions::pool is required");
  sched_options_.control = control_;
  vector_options_.control = control_;
}

void Evaluator::add_config(const arch::Biochip& augmented,
                           const testgen::PathPlan& plan) {
  configs_.push_back(&augmented);
  plans_.push_back(&plan);

  // The per-configuration key prefix: base (assay + options) extended with
  // the augmented chip's full structure and the path plan's content. Forked
  // and completed with the sharing vector by candidate_key().
  ContentHasher h = base_hasher(assay_, sched_options_, vector_options_);
  h.mix_bytes(arch::chip_to_string(augmented));
  h.mix_int(plan.source);
  h.mix_int(plan.meter);
  h.mix(plan.paths.size());
  for (const std::vector<graph::EdgeId>& path : plan.paths) {
    h.mix_vector(path);
  }
  h.mix_vector(plan.added_edges);
  config_prefix_.push_back(h);
}

Hash128 Evaluator::candidate_key(int config_index,
                                 const SharingScheme& scheme) const {
  ContentHasher h = config_prefix_[static_cast<std::size_t>(config_index)];
  h.mix_vector(scheme.partner);
  return h.digest();
}

Evaluation Evaluator::compute(int config_index, const SharingScheme& scheme,
                              std::size_t slot, EvalStats& stats) {
  const StageTimer total;
  Evaluation eval;
  const arch::Biochip shared = apply_sharing(config(config_index), scheme);
  {
    const StageTimer timer;
    const sched::Schedule schedule = sched::schedule_assay(
        shared, assay_, sched_options_, contexts_[slot]);
    stats.schedule_seconds += timer.seconds();
    ++stats.scheduler_runs;
    eval.schedule_ok = schedule.feasible;
    if (schedule.feasible) eval.makespan = schedule.makespan;
  }
  if (eval.schedule_ok) {
    // Testability check: vector generation (and its full-coverage recheck)
    // runs on the batch fault kernel — one subgraph analysis per candidate
    // vector instead of one BFS pair per (fault, vector).
    testgen::VectorGenOptions vopt = vector_options_;
    vopt.plan = plans_[static_cast<std::size_t>(config_index)];
    const StageTimer timer;
    const auto suite = testgen::generate_test_suite(
        shared, plan(config_index).source, plan(config_index).meter, vopt);
    stats.testgen_seconds += timer.seconds();
    ++stats.testgen_runs;
    eval.tests_ok = suite.has_value();
  }
  if (!eval.tests_ok) {
    eval.makespan = std::numeric_limits<double>::infinity();
  }
  if (control_ != nullptr &&
      control_->stop_observed() != StopReason::kNone) {
    // A stop fired somewhere during this candidate (possibly on another
    // worker): the value may reflect an aborted schedule or test run.
    eval.aborted = true;
  }
  ++stats.evaluations;
  stats.eval_seconds += total.seconds();
  return eval;
}

bool Evaluator::probe_shared(const Hash128& key, Evaluation* out) {
  if (shared_cache_ == nullptr) return false;
  FitnessRecord record;
  if (!shared_cache_->get(key, &record)) return false;
  // The record is the pure-function outcome another evaluator computed for
  // exactly these content-hashed inputs. Serve it, remember it privately,
  // and advance the logical counters exactly as compute() would have — so
  // serialized results cannot tell a shared hit from a recompute.
  out->makespan = record.makespan;
  out->schedule_ok = record.schedule_ok;
  out->tests_ok = record.tests_ok;
  out->aborted = false;
  cache_.emplace(key, *out);
  ++stats_.shared_hits;
  ++stats_.evaluations;
  ++stats_.scheduler_runs;
  if (record.schedule_ok) ++stats_.testgen_runs;
  return true;
}

void Evaluator::publish(const Hash128& key, const Evaluation& eval) {
  cache_.emplace(key, eval);
  if (shared_cache_ != nullptr) {
    shared_cache_->put(
        key, FitnessRecord{eval.makespan, eval.schedule_ok, eval.tests_ok});
  }
}

Evaluation Evaluator::evaluate(int config_index, const SharingScheme& scheme) {
  const Hash128 key = candidate_key(config_index, scheme);
  if (const auto cached = cache_.find(key); cached != cache_.end()) {
    ++stats_.cache_hits;
    return cached->second;
  }
  Evaluation eval;
  if (probe_shared(key, &eval)) return eval;
  eval = compute(config_index, scheme, 0, stats_);
  if (eval.aborted) return eval;  // never memoize aborted work
  publish(key, eval);
  return eval;
}

void Evaluator::evaluate_batch(int config_index,
                               std::span<const SharingScheme> schemes,
                               std::span<double> makespans) {
  MFD_REQUIRE(schemes.size() == makespans.size(),
              "evaluate_batch(): one output slot per scheme required");

  // Phase 1 (serial, batch order): resolve private-tier hits, shared-tier
  // hits, and in-batch duplicates. Fixes every counter before any parallel
  // work starts, so the numbers cannot depend on the thread count — and a
  // shared hit's counter increments mirror compute()'s, so they cannot
  // depend on the cache configuration either.
  constexpr std::size_t kPending = static_cast<std::size_t>(-1);
  constexpr std::size_t kResolved = static_cast<std::size_t>(-2);
  std::vector<std::size_t> unique_of(schemes.size(), kPending);
  std::vector<std::size_t> unique_items;  // batch index of each unique miss
  std::vector<Hash128> unique_keys;
  std::unordered_map<Hash128, std::size_t, Hash128Hasher> batch_index;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const Hash128 key = candidate_key(config_index, schemes[i]);
    if (const auto cached = cache_.find(key); cached != cache_.end()) {
      makespans[i] = cached->second.makespan;
      unique_of[i] = kResolved;
      ++stats_.cache_hits;
      continue;
    }
    if (const auto seen = batch_index.find(key); seen != batch_index.end()) {
      // Duplicate within this batch: computed once, counted as a hit.
      unique_of[i] = seen->second;
      ++stats_.cache_hits;
      continue;
    }
    Evaluation eval;
    if (probe_shared(key, &eval)) {
      // probe_shared() cached the record privately, so later duplicates of
      // this key in the batch resolve as ordinary cache hits — exactly as
      // they would had the first occurrence been computed.
      makespans[i] = eval.makespan;
      unique_of[i] = kResolved;
      continue;
    }
    unique_of[i] = unique_items.size();
    batch_index.emplace(key, unique_items.size());
    unique_items.push_back(i);
    unique_keys.push_back(key);
  }

  // Phase 2 (parallel): compute the unique misses. Each runner owns the
  // scratch context and stats block of its slot, so no synchronization is
  // needed inside the loop.
  std::vector<Evaluation> results(unique_items.size());
  {
    const auto span =
        trace_span(tracer_of(control_), "eval_batch");
    trace_counter(tracer_of(control_), "batch_misses",
                  static_cast<std::int64_t>(unique_items.size()));
    pool_.parallel_for(unique_items.size(),
                       [&](std::size_t item, std::size_t slot) {
                         results[item] = compute(
                             config_index, schemes[unique_items[item]],
                             slot, slot_stats_[slot]);
                       });
  }
  for (EvalStats& slot : slot_stats_) {
    stats_ += slot;
    slot = EvalStats{};
  }

  // Phase 3 (serial, batch order): publish results to both tiers and fill
  // the outputs. Aborted evaluations are skipped: a stop mid-batch must not
  // leak timing-dependent values into the (otherwise deterministic) caches.
  for (std::size_t u = 0; u < unique_items.size(); ++u) {
    if (results[u].aborted) continue;
    publish(unique_keys[u], results[u]);
  }
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    if (unique_of[i] != kPending && unique_of[i] != kResolved) {
      makespans[i] = results[unique_of[i]].makespan;
    }
  }
}

}  // namespace mfd::core
