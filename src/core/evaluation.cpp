#include "core/evaluation.hpp"

#include <mutex>

#include "common/error.hpp"

namespace mfd::core {

Evaluator::Evaluator(const sched::Assay& assay,
                     const sched::ScheduleOptions& sched_options,
                     const testgen::VectorGenOptions& vector_options,
                     ThreadPool& pool, const RunControl* control)
    : assay_(assay),
      sched_options_(sched_options),
      vector_options_(vector_options),
      pool_(pool),
      control_(control),
      contexts_(static_cast<std::size_t>(pool.thread_count())),
      slot_stats_(static_cast<std::size_t>(pool.thread_count())) {
  sched_options_.control = control_;
  vector_options_.control = control_;
}

void Evaluator::add_config(const arch::Biochip& augmented,
                           const testgen::PathPlan& plan) {
  configs_.push_back(&augmented);
  plans_.push_back(&plan);
}

Evaluation Evaluator::compute(int config_index, const SharingScheme& scheme,
                              std::size_t slot, EvalStats& stats) {
  const StageTimer total;
  Evaluation eval;
  const arch::Biochip shared = apply_sharing(config(config_index), scheme);
  {
    const StageTimer timer;
    const sched::Schedule schedule = sched::schedule_assay(
        shared, assay_, sched_options_, contexts_[slot]);
    stats.schedule_seconds += timer.seconds();
    ++stats.scheduler_runs;
    eval.schedule_ok = schedule.feasible;
    if (schedule.feasible) eval.makespan = schedule.makespan;
  }
  if (eval.schedule_ok) {
    // Testability check: vector generation (and its full-coverage recheck)
    // runs on the batch fault kernel — one subgraph analysis per candidate
    // vector instead of one BFS pair per (fault, vector).
    testgen::VectorGenOptions vopt = vector_options_;
    vopt.plan = plans_[static_cast<std::size_t>(config_index)];
    const StageTimer timer;
    const auto suite = testgen::generate_test_suite(
        shared, plan(config_index).source, plan(config_index).meter, vopt);
    stats.testgen_seconds += timer.seconds();
    ++stats.testgen_runs;
    eval.tests_ok = suite.has_value();
  }
  if (!eval.tests_ok) {
    eval.makespan = std::numeric_limits<double>::infinity();
  }
  if (control_ != nullptr &&
      control_->stop_observed() != StopReason::kNone) {
    // A stop fired somewhere during this candidate (possibly on another
    // worker): the value may reflect an aborted schedule or test run.
    eval.aborted = true;
  }
  ++stats.evaluations;
  stats.eval_seconds += total.seconds();
  return eval;
}

Evaluation Evaluator::evaluate(int config_index, const SharingScheme& scheme) {
  CacheKey key{config_index, scheme.partner};
  {
    const std::shared_lock lock(cache_mutex_);
    const auto cached = cache_.find(key);
    if (cached != cache_.end()) {
      ++stats_.cache_hits;
      return cached->second;
    }
  }
  const Evaluation eval = compute(config_index, scheme, 0, stats_);
  if (eval.aborted) return eval;  // never memoize aborted work
  const std::unique_lock lock(cache_mutex_);
  return cache_.emplace(std::move(key), eval).first->second;
}

void Evaluator::evaluate_batch(int config_index,
                               std::span<const SharingScheme> schemes,
                               std::span<double> makespans) {
  MFD_REQUIRE(schemes.size() == makespans.size(),
              "evaluate_batch(): one output slot per scheme required");

  // Phase 1 (serial, batch order): resolve cache hits and collapse in-batch
  // duplicates. Fixes every counter before any parallel work starts, so the
  // numbers cannot depend on the thread count.
  constexpr std::size_t kPending = static_cast<std::size_t>(-1);
  std::vector<std::size_t> unique_of(schemes.size(), kPending);
  std::vector<std::size_t> unique_items;  // batch index of each unique miss
  std::vector<CacheKey> unique_keys;
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> batch_index;
  {
    const std::shared_lock lock(cache_mutex_);
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      CacheKey key{config_index, schemes[i].partner};
      const auto cached = cache_.find(key);
      if (cached != cache_.end()) {
        makespans[i] = cached->second.makespan;
        ++stats_.cache_hits;
        continue;
      }
      const auto seen = batch_index.find(key);
      if (seen != batch_index.end()) {
        // Duplicate within this batch: computed once, counted as a hit.
        unique_of[i] = seen->second;
        ++stats_.cache_hits;
        continue;
      }
      unique_of[i] = unique_items.size();
      batch_index.emplace(key, unique_items.size());
      unique_items.push_back(i);
      unique_keys.push_back(std::move(key));
    }
  }

  // Phase 2 (parallel): compute the unique misses. Each runner owns the
  // scratch context and stats block of its slot, so no synchronization is
  // needed inside the loop.
  std::vector<Evaluation> results(unique_items.size());
  {
    const auto span =
        trace_span(tracer_of(control_), "eval_batch");
    trace_counter(tracer_of(control_), "batch_misses",
                  static_cast<std::int64_t>(unique_items.size()));
    pool_.parallel_for(unique_items.size(),
                       [&](std::size_t item, std::size_t slot) {
                         results[item] = compute(
                             config_index, schemes[unique_items[item]],
                             slot, slot_stats_[slot]);
                       });
  }
  for (EvalStats& slot : slot_stats_) {
    stats_ += slot;
    slot = EvalStats{};
  }

  // Phase 3 (serial, batch order): publish results and fill the outputs.
  // Aborted evaluations are skipped: a stop mid-batch must not leak
  // timing-dependent values into the (otherwise deterministic) cache.
  {
    const std::unique_lock lock(cache_mutex_);
    for (std::size_t u = 0; u < unique_items.size(); ++u) {
      if (results[u].aborted) continue;
      cache_.emplace(std::move(unique_keys[u]), results[u]);
    }
  }
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    if (unique_of[i] != kPending) {
      makespans[i] = results[unique_of[i]].makespan;
    }
  }
}

}  // namespace mfd::core
