// Mixed 0-1 / linear model builder.
//
// The DFT augmentation problem (equations (1)-(6) of the paper) is expressed
// against this interface and solved by the in-repo branch-and-bound solver.
// The builder is deliberately small: sparse linear expressions, three
// constraint senses, bounded variables, and a linear objective.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace mfd::ilp {

using VarId = int;

enum class VarType { kContinuous, kBinary, kInteger };

enum class Sense { kLessEqual, kEqual, kGreaterEqual };

/// One coefficient of a sparse linear expression.
struct LinearTerm {
  VarId var = -1;
  double coeff = 0.0;
};

/// Sparse linear expression sum(coeff_i * var_i) + constant.
class LinearExpr {
 public:
  LinearExpr() = default;

  LinearExpr& add(VarId var, double coeff) {
    terms_.push_back({var, coeff});
    return *this;
  }

  LinearExpr& add_constant(double value) {
    constant_ += value;
    return *this;
  }

  [[nodiscard]] const std::vector<LinearTerm>& terms() const { return terms_; }
  [[nodiscard]] double constant() const { return constant_; }

  /// Evaluates the expression on a full assignment vector.
  [[nodiscard]] double evaluate(const std::vector<double>& values) const;

  /// Merges duplicate variables and drops zero coefficients.
  void normalize();

 private:
  std::vector<LinearTerm> terms_;
  double constant_ = 0.0;
};

/// A linear constraint expr (sense) rhs. The expression's constant is folded
/// into the rhs by Model::add_constraint.
struct Constraint {
  LinearExpr expr;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;

  [[nodiscard]] bool satisfied(const std::vector<double>& values,
                               double tol = 1e-6) const;
};

struct Variable {
  VarType type = VarType::kContinuous;
  double lower = 0.0;
  double upper = 0.0;
  std::string name;
  /// Branch-and-bound picks fractional variables of the highest priority
  /// class first (structural decisions before dependent ones).
  int branch_priority = 0;
};

/// An optimization model: minimize objective subject to linear constraints
/// and variable bounds.
class Model {
 public:
  /// Adds a variable with explicit bounds. Use +/-infinity for free bounds.
  VarId add_variable(VarType type, double lower, double upper,
                     std::string name = {});

  /// Adds a 0-1 variable.
  VarId add_binary(std::string name = {}) {
    return add_variable(VarType::kBinary, 0.0, 1.0, std::move(name));
  }

  VarId add_continuous(double lower, double upper, std::string name = {}) {
    return add_variable(VarType::kContinuous, lower, upper, std::move(name));
  }

  /// Adds expr (sense) rhs; the expression's constant is moved to the rhs.
  void add_constraint(LinearExpr expr, Sense sense, double rhs);

  /// Sets the branching priority of a variable (default 0; higher = branch
  /// earlier).
  void set_branch_priority(VarId v, int priority);

  /// Sets the objective. The solver always minimizes; pass minimize=false to
  /// maximize (the objective is negated internally and the reported objective
  /// is negated back).
  void set_objective(LinearExpr objective, bool minimize = true);

  [[nodiscard]] int variable_count() const {
    return static_cast<int>(variables_.size());
  }
  [[nodiscard]] int constraint_count() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const Variable& variable(VarId v) const;
  [[nodiscard]] const std::vector<Variable>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const LinearExpr& objective() const { return objective_; }
  [[nodiscard]] bool minimize() const { return minimize_; }

  [[nodiscard]] bool has_integer_variables() const;

  /// True when the assignment satisfies every constraint and bound.
  [[nodiscard]] bool feasible(const std::vector<double>& values,
                              double tol = 1e-6) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  LinearExpr objective_;
  bool minimize_ = true;
};

}  // namespace mfd::ilp
