#include "ilp/sparse.hpp"

namespace mfd::ilp {

int SparseColumns::add_row(const LinearExpr& expr) {
  const int row = rows_++;
  for (const LinearTerm& t : expr.terms()) {
    MFD_REQUIRE(t.var >= 0 && t.var < cols(),
                "SparseColumns::add_row(): variable out of range");
    if (t.coeff == 0.0) continue;
    cols_[static_cast<std::size_t>(t.var)].push_back({row, t.coeff});
    ++nonzeros_;
  }
  return row;
}

}  // namespace mfd::ilp
