// Column-major sparse constraint matrix for the revised simplex.
//
// The engine prices and FTRANs against individual columns, and lazy cuts
// append whole rows; per-column nonzero lists support both directly: pricing
// walks a column's entries, and a row append pushes one entry onto each
// touched column. Entries within a column stay ordered by row (rows only
// ever grow), which keeps the dot products cache-friendly.
#pragma once

#include <vector>

#include "ilp/model.hpp"

namespace mfd::ilp {

struct SparseEntry {
  int row = 0;
  double value = 0.0;
};

class SparseColumns {
 public:
  SparseColumns() = default;
  explicit SparseColumns(int cols) : cols_(static_cast<std::size_t>(cols)) {}

  [[nodiscard]] int cols() const { return static_cast<int>(cols_.size()); }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int nonzeros() const { return nonzeros_; }

  [[nodiscard]] const std::vector<SparseEntry>& column(int j) const {
    return cols_[static_cast<std::size_t>(j)];
  }

  /// Appends one row holding the expression's terms; returns its row index.
  /// The expression must already be normalized (unique variables, no zero
  /// coefficients), which Model::add_constraint guarantees.
  int add_row(const LinearExpr& expr);

 private:
  std::vector<std::vector<SparseEntry>> cols_;
  int rows_ = 0;
  int nonzeros_ = 0;
};

}  // namespace mfd::ilp
