// Branch-and-bound 0-1 / mixed-integer solver over the simplex relaxation.
//
// Supports lazy constraints: after each integral candidate, a caller-supplied
// callback may return violated constraints (here: the loop-elimination cuts
// of [16] used by the DFT path formulation); the candidate is then rejected,
// the cuts are added globally, and the node is re-solved.
#pragma once

#include <functional>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace mfd::ilp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kTimeLimit,
  kNodeLimit,
  /// A RunControl deadline/cancellation fired; best incumbent returned.
  kStopped,
};

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Objective in the model's orientation; meaningful for kOptimal and for
  /// limit statuses when `values` is non-empty (best incumbent found).
  double objective = 0.0;
  std::vector<double> values;
  int nodes_explored = 0;
  int lazy_constraints_added = 0;
  /// Wall time inside the search (monotonic clock), excluding model copy
  /// and engine construction.
  double runtime_seconds = 0.0;
  /// Engine counters accumulated over every LP solved by this call (revised
  /// engine only; stays zero under SolverOptions::lp.use_dense).
  SolveStats stats;
  /// LP basis of the accepted incumbent (revised engine only). Feed it into
  /// a later related solve via SolverOptions::warm_start.
  Basis basis;

  [[nodiscard]] bool has_solution() const { return !values.empty(); }

  /// Rounded value of a variable in an integral solution.
  [[nodiscard]] bool binary_value(VarId v) const {
    MFD_REQUIRE(has_solution() &&
                    static_cast<std::size_t>(v) < values.size(),
                "binary_value(): no solution or variable out of range");
    return values[static_cast<std::size_t>(v)] > 0.5;
  }
};

struct SolverOptions {
  double time_limit_seconds = 120.0;
  int max_nodes = 200000;
  double integrality_tol = 1e-6;
  /// Nodes whose LP bound is within this absolute distance of the incumbent
  /// are pruned. Raising it above 0 turns the solver into an approximate one
  /// that still guarantees an incumbent within the gap of the optimum —
  /// useful when objectives are near-integral and proving the last fraction
  /// of optimality dominates runtime.
  double absolute_gap = 1e-9;
  LpOptions lp;
  /// Optional cooperative deadline/cancellation, polled at every node (and
  /// propagated into the simplex iterations). Borrowed, may be null.
  const RunControl* control = nullptr;
  /// Optional basis seeding the root relaxation (revised engine only) —
  /// typically Solution::basis from a previous solve of a related model.
  /// Borrowed, may be null.
  const Basis* warm_start = nullptr;
};

/// Called with an integral candidate assignment; returns constraints violated
/// by it (empty = accept the candidate).
using LazyConstraintCallback =
    std::function<std::vector<Constraint>(const std::vector<double>&)>;

/// Solves the model to optimality (or until a limit fires, in which case the
/// best incumbent found so far is returned with the corresponding status).
Solution solve_ilp(const Model& model, const SolverOptions& options = {},
                   const LazyConstraintCallback& lazy = nullptr);

}  // namespace mfd::ilp
