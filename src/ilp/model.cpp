#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace mfd::ilp {

double LinearExpr::evaluate(const std::vector<double>& values) const {
  double total = constant_;
  for (const LinearTerm& t : terms_) {
    MFD_REQUIRE(t.var >= 0 && static_cast<std::size_t>(t.var) < values.size(),
                "LinearExpr::evaluate(): variable out of range");
    total += t.coeff * values[static_cast<std::size_t>(t.var)];
  }
  return total;
}

void LinearExpr::normalize() {
  std::map<VarId, double> merged;
  for (const LinearTerm& t : terms_) merged[t.var] += t.coeff;
  terms_.clear();
  for (const auto& [var, coeff] : merged) {
    if (std::abs(coeff) > 0.0) terms_.push_back({var, coeff});
  }
}

bool Constraint::satisfied(const std::vector<double>& values,
                           double tol) const {
  const double lhs = expr.evaluate(values);
  switch (sense) {
    case Sense::kLessEqual:
      return lhs <= rhs + tol;
    case Sense::kEqual:
      return std::abs(lhs - rhs) <= tol;
    case Sense::kGreaterEqual:
      return lhs >= rhs - tol;
  }
  return false;
}

VarId Model::add_variable(VarType type, double lower, double upper,
                          std::string name) {
  MFD_REQUIRE(lower <= upper, "add_variable(): lower bound exceeds upper");
  if (type == VarType::kBinary) {
    MFD_REQUIRE(lower >= 0.0 && upper <= 1.0,
                "add_variable(): binary bounds must lie in [0,1]");
  }
  variables_.push_back(Variable{type, lower, upper, std::move(name)});
  return static_cast<VarId>(variables_.size()) - 1;
}

void Model::add_constraint(LinearExpr expr, Sense sense, double rhs) {
  expr.normalize();
  for (const LinearTerm& t : expr.terms()) {
    MFD_REQUIRE(t.var >= 0 && t.var < variable_count(),
                "add_constraint(): unknown variable");
  }
  const double folded_rhs = rhs - expr.constant();
  LinearExpr without_constant;
  for (const LinearTerm& t : expr.terms()) without_constant.add(t.var, t.coeff);
  constraints_.push_back(Constraint{std::move(without_constant), sense,
                                    folded_rhs});
}

void Model::set_objective(LinearExpr objective, bool minimize) {
  objective.normalize();
  for (const LinearTerm& t : objective.terms()) {
    MFD_REQUIRE(t.var >= 0 && t.var < variable_count(),
                "set_objective(): unknown variable");
  }
  objective_ = std::move(objective);
  minimize_ = minimize;
}

void Model::set_branch_priority(VarId v, int priority) {
  MFD_REQUIRE(v >= 0 && v < variable_count(),
              "set_branch_priority(): id out of range");
  variables_[static_cast<std::size_t>(v)].branch_priority = priority;
}

const Variable& Model::variable(VarId v) const {
  MFD_REQUIRE(v >= 0 && v < variable_count(), "variable(): id out of range");
  return variables_[static_cast<std::size_t>(v)];
}

bool Model::has_integer_variables() const {
  return std::any_of(variables_.begin(), variables_.end(),
                     [](const Variable& v) {
                       return v.type != VarType::kContinuous;
                     });
}

bool Model::feasible(const std::vector<double>& values, double tol) const {
  if (values.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    if (values[i] < v.lower - tol || values[i] > v.upper + tol) return false;
    if (v.type != VarType::kContinuous &&
        std::abs(values[i] - std::round(values[i])) > tol) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    if (!c.satisfied(values, tol)) return false;
  }
  return true;
}

}  // namespace mfd::ilp
