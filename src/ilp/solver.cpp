#include "ilp/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

namespace mfd::ilp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = -kInf;  // LP bound in minimize orientation
  int depth = 0;
};

struct NodeOrder {
  // Best-first: smaller bound first; deeper first on ties (dives to find
  // incumbents quickly).
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.depth < b.depth;
  }
};

// Index of the fractional integer variable to branch on, or -1 when the
// assignment is integral. Highest branch priority wins; most fractional
// breaks ties within a priority class.
int fractional_variable(const Model& model, const std::vector<double>& values,
                        double tol) {
  int best = -1;
  int best_priority = 0;
  double best_frac = 0.0;
  for (VarId v = 0; v < model.variable_count(); ++v) {
    const Variable& var = model.variable(v);
    if (var.type == VarType::kContinuous) continue;
    const double value = values[static_cast<std::size_t>(v)];
    const double frac = std::abs(value - std::round(value));
    if (frac <= tol) continue;
    if (best == -1 || var.branch_priority > best_priority ||
        (var.branch_priority == best_priority && frac > best_frac)) {
      best = v;
      best_priority = var.branch_priority;
      best_frac = frac;
    }
  }
  return best;
}

void round_integers(const Model& model, std::vector<double>& values) {
  for (VarId v = 0; v < model.variable_count(); ++v) {
    if (model.variable(v).type == VarType::kContinuous) continue;
    values[static_cast<std::size_t>(v)] =
        std::round(values[static_cast<std::size_t>(v)]);
  }
}

}  // namespace

Solution solve_ilp(const Model& model, const SolverOptions& options,
                   const LazyConstraintCallback& lazy) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Working copy: lazy constraints are appended here as they are discovered.
  Model work = model;
  const double orient = model.minimize() ? 1.0 : -1.0;

  Solution result;

  // Propagate the run control into the LP so long simplex runs also stop.
  SolverOptions limits = options;
  limits.lp.control = options.control;

  if (stop_requested(options.control)) {
    result.status = SolveStatus::kStopped;
    result.runtime_seconds = elapsed();
    return result;
  }

  std::vector<double> root_lower(
      static_cast<std::size_t>(model.variable_count()));
  std::vector<double> root_upper(
      static_cast<std::size_t>(model.variable_count()));
  for (VarId v = 0; v < model.variable_count(); ++v) {
    root_lower[static_cast<std::size_t>(v)] = model.variable(v).lower;
    root_upper[static_cast<std::size_t>(v)] = model.variable(v).upper;
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;

  // Solve the root relaxation first to classify infeasible/unbounded models.
  {
    const LpResult root = solve_lp(work, root_lower, root_upper, limits.lp);
    ++result.nodes_explored;
    if (stop_requested(options.control)) {
      result.status = SolveStatus::kStopped;
      result.runtime_seconds = elapsed();
      return result;
    }
    if (root.status == LpStatus::kInfeasible ||
        root.status == LpStatus::kIterationLimit) {
      result.status = SolveStatus::kInfeasible;
      result.runtime_seconds = elapsed();
      return result;
    }
    if (root.status == LpStatus::kUnbounded) {
      // With integer variables the IP could still be bounded, but every model
      // in this library is bounded by construction; report honestly.
      result.status = SolveStatus::kUnbounded;
      result.runtime_seconds = elapsed();
      return result;
    }
    Node node{root_lower, root_upper, orient * root.objective, 0};
    open.push(std::move(node));
  }

  double incumbent_key = kInf;  // minimize orientation

  while (!open.empty()) {
    if (stop_requested(options.control)) {
      result.status = SolveStatus::kStopped;
      result.runtime_seconds = elapsed();
      return result;
    }
    if (elapsed() > options.time_limit_seconds) {
      result.status = SolveStatus::kTimeLimit;
      result.runtime_seconds = elapsed();
      return result;
    }
    if (result.nodes_explored >= options.max_nodes) {
      result.status = SolveStatus::kNodeLimit;
      result.runtime_seconds = elapsed();
      return result;
    }

    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_key - options.absolute_gap) continue;

    const LpResult lp = solve_lp(work, node.lower, node.upper, limits.lp);
    ++result.nodes_explored;
    if (lp.status != LpStatus::kOptimal) continue;  // infeasible subtree
    const double key = orient * lp.objective;
    if (key >= incumbent_key - options.absolute_gap) continue;

    const int branch_var =
        fractional_variable(work, lp.values, options.integrality_tol);
    if (branch_var == -1) {
      // Integral candidate. Give the lazy callback a chance to reject it.
      std::vector<double> candidate = lp.values;
      round_integers(work, candidate);
      if (lazy) {
        std::vector<Constraint> cuts = lazy(candidate);
        if (!cuts.empty()) {
          for (Constraint& cut : cuts) {
            work.add_constraint(std::move(cut.expr), cut.sense, cut.rhs);
            ++result.lazy_constraints_added;
          }
          // Re-solve the same node against the strengthened model.
          node.bound = key;
          open.push(std::move(node));
          continue;
        }
      }
      incumbent_key = key;
      result.values = std::move(candidate);
      result.objective = lp.objective;
      continue;
    }

    // Branch on the fractional variable.
    const double value = lp.values[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(value);
    down.bound = key;
    down.depth = node.depth + 1;
    Node up = std::move(node);
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(value);
    up.bound = key;
    up.depth = down.depth;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  result.status = result.has_solution() ? SolveStatus::kOptimal
                                        : SolveStatus::kInfeasible;
  result.runtime_seconds = elapsed();
  return result;
}

}  // namespace mfd::ilp
