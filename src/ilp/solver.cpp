#include "ilp/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <utility>

#include "common/trace.hpp"
#include "ilp/revised_simplex.hpp"

namespace mfd::ilp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound = -kInf;  // LP bound in minimize orientation
  int depth = 0;
  /// Parent's optimal basis: the node's relaxation warm-starts from it
  /// (shared between siblings, which differ only in one bound).
  std::shared_ptr<const Basis> warm;
};

struct NodeOrder {
  // Best-first: smaller bound first; deeper first on ties (dives to find
  // incumbents quickly).
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.depth < b.depth;
  }
};

// Index of the fractional integer variable to branch on, or -1 when the
// assignment is integral. Highest branch priority wins; most fractional
// breaks ties within a priority class.
int fractional_variable(const Model& model, const std::vector<double>& values,
                        double tol) {
  int best = -1;
  int best_priority = 0;
  double best_frac = 0.0;
  for (VarId v = 0; v < model.variable_count(); ++v) {
    const Variable& var = model.variable(v);
    if (var.type == VarType::kContinuous) continue;
    const double value = values[static_cast<std::size_t>(v)];
    const double frac = std::abs(value - std::round(value));
    if (frac <= tol) continue;
    if (best == -1 || var.branch_priority > best_priority ||
        (var.branch_priority == best_priority && frac > best_frac)) {
      best = v;
      best_priority = var.branch_priority;
      best_frac = frac;
    }
  }
  return best;
}

void round_integers(const Model& model, std::vector<double>& values) {
  for (VarId v = 0; v < model.variable_count(); ++v) {
    if (model.variable(v).type == VarType::kContinuous) continue;
    values[static_cast<std::size_t>(v)] =
        std::round(values[static_cast<std::size_t>(v)]);
  }
}

}  // namespace

Solution solve_ilp(const Model& model, const SolverOptions& options,
                   const LazyConstraintCallback& lazy) {
  const bool use_dense = options.lp.use_dense;

  // Propagate the run control into the LP so long simplex runs also stop.
  SolverOptions limits = options;
  limits.lp.control = options.control;
  limits.lp.warm_start = nullptr;  // per-node bases are passed explicitly

  // Build phase: the dense oracle re-reads a Model every solve, so it needs
  // a mutable copy for lazy cuts; the revised engine is built once and
  // mutated in place. Neither counts towards runtime_seconds.
  std::optional<Model> work;
  std::optional<LpEngine> engine;
  if (use_dense) {
    work.emplace(model);
  } else {
    engine.emplace(model, limits.lp);
  }

  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const double orient = model.minimize() ? 1.0 : -1.0;

  Solution result;
  auto finish = [&](SolveStatus status) -> Solution& {
    result.status = status;
    result.runtime_seconds = elapsed();
    if (engine.has_value()) {
      result.stats = engine->stats();
      if (options.lp.stats != nullptr) *options.lp.stats += engine->stats();
    }
    if (Tracer* tracer = tracer_of(options.control)) {
      trace_counter(tracer, "ilp.nodes", result.nodes_explored);
      trace_counter(tracer, "ilp.lazy_cuts", result.lazy_constraints_added);
      trace_counter(tracer, "ilp.pivots", result.stats.pivots);
      trace_counter(tracer, "ilp.refactorizations",
                    result.stats.refactorizations);
      trace_counter(tracer, "ilp.warm_start_attempts",
                    result.stats.warm_start_attempts);
      trace_counter(tracer, "ilp.warm_start_hits",
                    result.stats.warm_start_hits);
      trace_counter(tracer, "ilp.presolve_fixed_columns",
                    result.stats.presolve_fixed_columns);
      trace_counter(tracer, "ilp.presolve_redundant_rows",
                    result.stats.presolve_redundant_rows);
      trace_counter(tracer, "ilp.presolve_bound_tightenings",
                    result.stats.presolve_bound_tightenings);
      trace_counter(tracer, "ilp.lp_solves", result.stats.lp_solves);
      trace_counter(tracer, "ilp.repair_phases", result.stats.repair_phases);
    }
    return result;
  };

  auto relax = [&](const std::vector<double>& lower,
                   const std::vector<double>& upper,
                   const Basis* warm) -> LpResult {
    if (use_dense) return solve_lp_dense(*work, lower, upper, limits.lp);
    return engine->solve(lower, upper, warm);
  };

  auto add_cut = [&](Constraint cut) {
    if (use_dense) {
      work->add_constraint(std::move(cut.expr), cut.sense, cut.rhs);
    } else {
      engine->add_constraint(cut);
    }
  };

  if (stop_requested(options.control)) return finish(SolveStatus::kStopped);

  std::vector<double> root_lower(
      static_cast<std::size_t>(model.variable_count()));
  std::vector<double> root_upper(
      static_cast<std::size_t>(model.variable_count()));
  for (VarId v = 0; v < model.variable_count(); ++v) {
    root_lower[static_cast<std::size_t>(v)] = model.variable(v).lower;
    root_upper[static_cast<std::size_t>(v)] = model.variable(v).upper;
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;

  // Solve the root relaxation first to classify infeasible/unbounded models.
  {
    const LpResult root =
        relax(root_lower, root_upper, options.warm_start);
    ++result.nodes_explored;
    if (stop_requested(options.control)) return finish(SolveStatus::kStopped);
    if (root.status == LpStatus::kInfeasible ||
        root.status == LpStatus::kIterationLimit) {
      return finish(SolveStatus::kInfeasible);
    }
    if (root.status == LpStatus::kUnbounded) {
      // With integer variables the IP could still be bounded, but every model
      // in this library is bounded by construction; report honestly.
      return finish(SolveStatus::kUnbounded);
    }
    Node node{root_lower, root_upper, orient * root.objective, 0,
              root.basis.empty()
                  ? nullptr
                  : std::make_shared<const Basis>(root.basis)};
    open.push(std::move(node));
  }

  double incumbent_key = kInf;  // minimize orientation

  while (!open.empty()) {
    if (stop_requested(options.control)) return finish(SolveStatus::kStopped);
    if (elapsed() > options.time_limit_seconds) {
      return finish(SolveStatus::kTimeLimit);
    }
    if (result.nodes_explored >= options.max_nodes) {
      return finish(SolveStatus::kNodeLimit);
    }

    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_key - options.absolute_gap) continue;

    const LpResult lp = relax(node.lower, node.upper, node.warm.get());
    ++result.nodes_explored;
    if (lp.status != LpStatus::kOptimal) continue;  // infeasible subtree
    const double key = orient * lp.objective;
    if (key >= incumbent_key - options.absolute_gap) continue;

    const int branch_var =
        fractional_variable(model, lp.values, options.integrality_tol);
    if (branch_var == -1) {
      // Integral candidate. Give the lazy callback a chance to reject it.
      std::vector<double> candidate = lp.values;
      round_integers(model, candidate);
      if (lazy) {
        std::vector<Constraint> cuts = lazy(candidate);
        if (!cuts.empty()) {
          for (Constraint& cut : cuts) {
            add_cut(std::move(cut));
            ++result.lazy_constraints_added;
          }
          // Re-solve the same node against the strengthened model; the
          // engine extends this node's basis with the new rows' slacks.
          node.bound = key;
          if (!lp.basis.empty()) {
            node.warm = std::make_shared<const Basis>(lp.basis);
          }
          open.push(std::move(node));
          continue;
        }
      }
      incumbent_key = key;
      result.values = std::move(candidate);
      result.objective = lp.objective;
      result.basis = lp.basis;
      continue;
    }

    // Branch on the fractional variable; both children resume from this
    // node's optimal basis.
    const std::shared_ptr<const Basis> warm =
        lp.basis.empty() ? node.warm
                         : std::make_shared<const Basis>(lp.basis);
    const double value = lp.values[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(value);
    down.bound = key;
    down.depth = node.depth + 1;
    down.warm = warm;
    Node up = std::move(node);
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(value);
    up.bound = key;
    up.depth = down.depth;
    up.warm = warm;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  return finish(result.has_solution() ? SolveStatus::kOptimal
                                      : SolveStatus::kInfeasible);
}

}  // namespace mfd::ilp
