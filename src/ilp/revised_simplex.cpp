#include "ilp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mfd::ilp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

LpEngine::LpEngine(const Model& model, const LpOptions& options)
    : options_(options),
      structural_(model.variable_count()),
      matrix_(model.variable_count()) {
  orientation_ = model.minimize() ? 1.0 : -1.0;

  base_lower_.resize(static_cast<std::size_t>(structural_));
  base_upper_.resize(static_cast<std::size_t>(structural_));
  for (VarId v = 0; v < structural_; ++v) {
    const Variable& var = model.variable(v);
    base_lower_[static_cast<std::size_t>(v)] = var.lower;
    base_upper_[static_cast<std::size_t>(v)] = var.upper;
  }

  set_objective(model.objective(), model.minimize());
  for (const Constraint& c : model.constraints()) add_constraint(c);
}

void LpEngine::add_constraint(const Constraint& constraint) {
  // Lazy cuts may arrive unnormalized (duplicate variables, embedded
  // constants); mirror Model::add_constraint's canonical form.
  LinearExpr expr = constraint.expr;
  expr.normalize();
  matrix_.add_row(expr);
  rhs_.push_back(constraint.rhs - expr.constant());
  switch (constraint.sense) {
    case Sense::kLessEqual:
      slack_lower_.push_back(0.0);
      slack_upper_.push_back(kInf);
      break;
    case Sense::kEqual:
      slack_lower_.push_back(0.0);
      slack_upper_.push_back(0.0);
      break;
    case Sense::kGreaterEqual:
      slack_lower_.push_back(-kInf);
      slack_upper_.push_back(0.0);
      break;
  }
  ++rows_;
}

void LpEngine::set_objective(const LinearExpr& objective, bool minimize) {
  orientation_ = minimize ? 1.0 : -1.0;
  cost_.assign(static_cast<std::size_t>(structural_), 0.0);
  for (const LinearTerm& t : objective.terms()) {
    MFD_REQUIRE(t.var >= 0 && t.var < structural_,
                "LpEngine::set_objective(): variable out of range");
    cost_[static_cast<std::size_t>(t.var)] += orientation_ * t.coeff;
  }
  objective_constant_ = objective.constant();
}

// One solve's working state. Kept separate from the engine so the engine's
// persistent data (matrix, bounds, costs) stays immutable during a solve.
class RevisedSolve {
 public:
  RevisedSolve(LpEngine& engine, const std::vector<double>& lower_override,
               const std::vector<double>& upper_override, const Basis* warm)
      : e_(engine),
        n_(engine.structural_),
        m_(engine.rows_),
        cols_(n_ + m_),
        tol_(engine.options_.tol) {
    build_bounds(lower_override, upper_override);
    warm_ = warm;
  }

  LpResult run() {
    LpResult result;
    ++e_.stats_.lp_solves;

    // An attempt is any solve that received a warm basis, even one presolve
    // answers outright; a hit requires actually adopting the basis.
    const bool have_warm = warm_ != nullptr && !warm_->empty();
    if (have_warm) ++e_.stats_.warm_start_attempts;

    if (!presolve()) {
      result.status = LpStatus::kInfeasible;
      return result;
    }

    if (have_warm && load_warm_basis(*warm_)) {
      ++e_.stats_.warm_start_hits;
    } else {
      load_slack_basis();
    }

    result.status = optimize(result.iterations);
    if (result.status == LpStatus::kOptimal) {
      extract(result);
    }
    return result;
  }

 private:
  // ---- setup -----------------------------------------------------------

  void build_bounds(const std::vector<double>& lower_override,
                    const std::vector<double>& upper_override) {
    lower_.resize(static_cast<std::size_t>(cols_));
    upper_.resize(static_cast<std::size_t>(cols_));
    for (int j = 0; j < n_; ++j) {
      lower_[static_cast<std::size_t>(j)] =
          lower_override.empty() ? e_.base_lower_[static_cast<std::size_t>(j)]
                                 : lower_override[static_cast<std::size_t>(j)];
      upper_[static_cast<std::size_t>(j)] =
          upper_override.empty() ? e_.base_upper_[static_cast<std::size_t>(j)]
                                 : upper_override[static_cast<std::size_t>(j)];
    }
    for (int i = 0; i < m_; ++i) {
      lower_[static_cast<std::size_t>(n_ + i)] =
          e_.slack_lower_[static_cast<std::size_t>(i)];
      upper_[static_cast<std::size_t>(n_ + i)] =
          e_.slack_upper_[static_cast<std::size_t>(i)];
    }
  }

  // Lightweight presolve on the effective bounds: bound-conflict and
  // fixed-column detection, empty/singleton-row handling, and activity-based
  // row infeasibility/redundancy analysis. Tightenings derived from
  // singleton rows are exact implications, so applying them never changes
  // the feasible region. Returns false when the LP is proven infeasible.
  bool presolve() {
    SolveStats& stats = e_.stats_;
    for (int j = 0; j < n_; ++j) {
      const double l = lower_[static_cast<std::size_t>(j)];
      const double u = upper_[static_cast<std::size_t>(j)];
      if (l > u + tol_) return false;
      if (u - l <= tol_) ++stats.presolve_fixed_columns;
    }

    // Structural entry count per row (for empty/singleton classification)
    // and activity bounds, accumulated column-wise.
    row_entries_.assign(static_cast<std::size_t>(m_), 0);
    row_single_.assign(static_cast<std::size_t>(m_), SparseEntry{-1, 0.0});
    act_min_.assign(static_cast<std::size_t>(m_), 0.0);
    act_max_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int j = 0; j < n_; ++j) {
      const double l = lower_[static_cast<std::size_t>(j)];
      const double u = upper_[static_cast<std::size_t>(j)];
      for (const SparseEntry& entry : e_.matrix_.column(j)) {
        const std::size_t i = static_cast<std::size_t>(entry.row);
        ++row_entries_[i];
        row_single_[i] = {j, entry.value};
        const double lo = entry.value >= 0.0 ? entry.value * l
                                             : entry.value * u;
        const double hi = entry.value >= 0.0 ? entry.value * u
                                             : entry.value * l;
        act_min_[i] += lo;
        act_max_[i] += hi;
      }
    }

    for (int i = 0; i < m_; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      const double b = e_.rhs_[si];
      // The row reads a.x + s = b with s in [sl, su], so a.x must land in
      // [b - su, b - sl].
      const double need_lo = b - e_.slack_upper_[si];
      const double need_hi = b - e_.slack_lower_[si];
      if (row_entries_[si] == 0) {
        // Empty constraint row: satisfied by the slack alone or infeasible.
        if (need_lo > tol_ || need_hi < -tol_) return false;
        ++stats.presolve_redundant_rows;
        continue;
      }
      if (act_min_[si] > need_hi + tol_ || act_max_[si] < need_lo - tol_) {
        return false;  // activity bounds prove the row unsatisfiable
      }
      if (act_min_[si] >= need_lo - tol_ && act_max_[si] <= need_hi + tol_) {
        ++stats.presolve_redundant_rows;
      }
      if (row_entries_[si] == 1) {
        // Singleton row a*x + s = b: implied bounds on x, applied exactly.
        const int j = row_single_[si].row >= 0 ? row_single_[si].row : -1;
        const double a = row_single_[si].value;
        if (j < 0 || a == 0.0) continue;
        double implied_lo = a > 0.0 ? need_lo / a : need_hi / a;
        double implied_hi = a > 0.0 ? need_hi / a : need_lo / a;
        double& l = lower_[static_cast<std::size_t>(j)];
        double& u = upper_[static_cast<std::size_t>(j)];
        bool tightened = false;
        if (implied_lo > l + tol_) {
          l = implied_lo;
          tightened = true;
        }
        if (implied_hi < u - tol_) {
          u = implied_hi;
          tightened = true;
        }
        if (tightened) ++stats.presolve_bound_tightenings;
        if (l > u + tol_) return false;
      }
    }
    return true;
  }

  // Nonbasic resting value of column j: its finite bound, or 0 for a free
  // column ("superbasic at zero").
  [[nodiscard]] double nonbasic_value(int j) const {
    const double l = lower_[static_cast<std::size_t>(j)];
    const double u = upper_[static_cast<std::size_t>(j)];
    if (status_[static_cast<std::size_t>(j)] == VarStatus::kAtUpper) {
      return u < kInf ? u : (l > -kInf ? l : 0.0);
    }
    return l > -kInf ? l : (u < kInf ? u : 0.0);
  }

  void load_slack_basis() {
    status_.assign(static_cast<std::size_t>(cols_), VarStatus::kAtLower);
    for (int j = 0; j < n_; ++j) {
      if (lower_[static_cast<std::size_t>(j)] <= -kInf &&
          upper_[static_cast<std::size_t>(j)] < kInf) {
        status_[static_cast<std::size_t>(j)] = VarStatus::kAtUpper;
      }
    }
    basic_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      basic_[static_cast<std::size_t>(i)] = n_ + i;
      status_[static_cast<std::size_t>(n_ + i)] = VarStatus::kBasic;
    }
    // Slack columns are unit vectors: the basis inverse is the identity.
    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
                 0.0);
    for (int i = 0; i < m_; ++i) binv(i, i) = 1.0;
  }

  // Adopts a snapshot taken on this engine (possibly before rows were
  // appended): missing rows get their slack basic, statuses are validated
  // and the inverse refactorized. Returns false when the snapshot is
  // incompatible or its basis matrix is singular.
  bool load_warm_basis(const Basis& warm) {
    if (static_cast<int>(warm.basic.size()) > m_ ||
        static_cast<int>(warm.status.size()) > cols_) {
      return false;
    }
    status_.assign(static_cast<std::size_t>(cols_), VarStatus::kAtLower);
    std::copy(warm.status.begin(), warm.status.end(), status_.begin());
    basic_.assign(static_cast<std::size_t>(m_), -1);
    std::vector<char> in_basis(static_cast<std::size_t>(cols_), 0);
    for (std::size_t i = 0; i < warm.basic.size(); ++i) {
      const int col = warm.basic[i];
      if (col < 0 || col >= cols_ || in_basis[static_cast<std::size_t>(col)]) {
        return false;
      }
      in_basis[static_cast<std::size_t>(col)] = 1;
      basic_[i] = col;
    }
    for (int i = static_cast<int>(warm.basic.size()); i < m_; ++i) {
      const int slack = n_ + i;
      if (in_basis[static_cast<std::size_t>(slack)]) return false;
      in_basis[static_cast<std::size_t>(slack)] = 1;
      basic_[static_cast<std::size_t>(i)] = slack;
    }
    // Normalize statuses against the basic set and the current bounds.
    for (int j = 0; j < cols_; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      if (in_basis[sj]) {
        status_[sj] = VarStatus::kBasic;
      } else if (status_[sj] == VarStatus::kBasic) {
        status_[sj] = VarStatus::kAtLower;
      }
      if (status_[sj] == VarStatus::kAtUpper &&
          upper_[sj] >= kInf) {
        status_[sj] = VarStatus::kAtLower;
      }
    }
    return refactorize();
  }

  // ---- dense basis inverse --------------------------------------------

  double& binv(int i, int j) {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double binv_at(int i, int j) const {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(j)];
  }

  // Gathers basis column `col` (sparse structural or unit slack) into out.
  void gather_column(int col, std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    if (col < n_) {
      for (const SparseEntry& entry : e_.matrix_.column(col)) {
        out[static_cast<std::size_t>(entry.row)] = entry.value;
      }
    } else {
      out[static_cast<std::size_t>(col - n_)] = 1.0;
    }
  }

  // Rebuilds binv_ = B^-1 by Gauss-Jordan with partial pivoting from the
  // sparse basis columns. Returns false on a (numerically) singular basis.
  bool refactorize() {
    ++e_.stats_.refactorizations;
    work_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
                 0.0);
    scratch_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      gather_column(basic_[static_cast<std::size_t>(i)], scratch_);
      for (int r = 0; r < m_; ++r) {
        work_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
              static_cast<std::size_t>(i)] = scratch_[static_cast<std::size_t>(r)];
      }
    }
    binv_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_),
                 0.0);
    for (int i = 0; i < m_; ++i) binv(i, i) = 1.0;
    auto w = [&](int r, int c) -> double& {
      return work_[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
                   static_cast<std::size_t>(c)];
    };
    for (int col = 0; col < m_; ++col) {
      int pivot = col;
      for (int r = col + 1; r < m_; ++r) {
        if (std::abs(w(r, col)) > std::abs(w(pivot, col))) pivot = r;
      }
      if (std::abs(w(pivot, col)) <= 1e-12) return false;
      if (pivot != col) {
        for (int c = 0; c < m_; ++c) {
          std::swap(w(pivot, c), w(col, c));
          std::swap(binv(pivot, c), binv(col, c));
        }
      }
      const double diag = w(col, col);
      for (int c = 0; c < m_; ++c) {
        w(col, c) /= diag;
        binv(col, c) /= diag;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = w(r, col);
        if (factor == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          w(r, c) -= factor * w(col, c);
          binv(r, c) -= factor * binv(col, c);
        }
      }
    }
    return true;
  }

  // ---- per-iteration quantities ---------------------------------------

  // beta = B^-1 (rhs - N x_N), the values of the basic variables.
  void compute_beta() {
    effective_.assign(e_.rhs_.begin(), e_.rhs_.end());
    for (int j = 0; j < cols_; ++j) {
      if (status_[static_cast<std::size_t>(j)] == VarStatus::kBasic) continue;
      const double value = nonbasic_value(j);
      if (value == 0.0) continue;
      if (j < n_) {
        for (const SparseEntry& entry : e_.matrix_.column(j)) {
          effective_[static_cast<std::size_t>(entry.row)] -=
              entry.value * value;
        }
      } else {
        effective_[static_cast<std::size_t>(j - n_)] -= value;
      }
    }
    beta_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      double sum = 0.0;
      const double* row =
          &binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_)];
      for (int k = 0; k < m_; ++k) {
        sum += row[k] * effective_[static_cast<std::size_t>(k)];
      }
      beta_[static_cast<std::size_t>(i)] = sum;
    }
  }

  // Total primal infeasibility of the basic values, filling the phase-1
  // gradient (-1 below lower, +1 above upper) as a side effect.
  double basic_infeasibility() {
    phase1_grad_.assign(static_cast<std::size_t>(m_), 0.0);
    double total = 0.0;
    for (int i = 0; i < m_; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      const int col = basic_[si];
      const double value = beta_[si];
      const double l = lower_[static_cast<std::size_t>(col)];
      const double u = upper_[static_cast<std::size_t>(col)];
      if (value < l - tol_) {
        phase1_grad_[si] = -1.0;
        total += l - value;
      } else if (value > u + tol_) {
        phase1_grad_[si] = 1.0;
        total += value - u;
      }
    }
    return total;
  }

  // y = c_B B^-1 for the active phase's costs.
  void compute_duals(bool repair_phase) {
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      double cb;
      if (repair_phase) {
        cb = phase1_grad_[static_cast<std::size_t>(i)];
      } else {
        const int col = basic_[static_cast<std::size_t>(i)];
        cb = col < n_ ? e_.cost_[static_cast<std::size_t>(col)] : 0.0;
      }
      if (cb == 0.0) continue;
      const double* row =
          &binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_)];
      for (int k = 0; k < m_; ++k) {
        y_[static_cast<std::size_t>(k)] += cb * row[k];
      }
    }
  }

  // Reduced cost of nonbasic column j under the active phase: sparse dot
  // against the column's nonzero list (the pricing step the sparse
  // representation exists for).
  [[nodiscard]] double reduced_cost(int j, bool repair_phase) const {
    double d = repair_phase || j >= n_
                   ? 0.0
                   : e_.cost_[static_cast<std::size_t>(j)];
    if (j < n_) {
      for (const SparseEntry& entry : e_.matrix_.column(j)) {
        d -= y_[static_cast<std::size_t>(entry.row)] * entry.value;
      }
    } else {
      d -= y_[static_cast<std::size_t>(j - n_)];
    }
    return d;
  }

  // alpha = B^-1 a_j (FTRAN) from the sparse column.
  void ftran(int j) {
    alpha_.assign(static_cast<std::size_t>(m_), 0.0);
    if (j < n_) {
      for (const SparseEntry& entry : e_.matrix_.column(j)) {
        const double value = entry.value;
        for (int i = 0; i < m_; ++i) {
          alpha_[static_cast<std::size_t>(i)] +=
              binv_at(i, entry.row) * value;
        }
      }
    } else {
      const int row = j - n_;
      for (int i = 0; i < m_; ++i) {
        alpha_[static_cast<std::size_t>(i)] = binv_at(i, row);
      }
    }
  }

  // ---- the simplex loop ------------------------------------------------

  LpStatus optimize(int& iterations_out) {
    const int iteration_limit =
        e_.options_.max_iterations > 0
            ? e_.options_.max_iterations
            : 200 * (m_ + cols_) + 2000;
    const int bland_threshold = 10 * (m_ + cols_) + 200;
    int stall = 0;
    bool repaired = false;

    for (int iteration = 0; iteration < iteration_limit; ++iteration) {
      ++iterations_out;
      if ((iteration & 63) == 0 && stop_requested(e_.options_.control)) {
        return LpStatus::kIterationLimit;
      }
      if ((iteration & 63) == 63) {
        if (!refactorize()) return LpStatus::kIterationLimit;
      }

      compute_beta();
      const double infeasibility = basic_infeasibility();
      const bool repair_phase = infeasibility > tol_;
      if (repair_phase && !repaired) {
        repaired = true;
        ++e_.stats_.repair_phases;
      }
      compute_duals(repair_phase);

      const bool use_bland = stall > bland_threshold;
      int entering = -1;
      int direction = 0;  // +1 rises from lower, -1 falls from upper
      double best_score = tol_;
      for (int j = 0; j < cols_; ++j) {
        const std::size_t sj = static_cast<std::size_t>(j);
        if (status_[sj] == VarStatus::kBasic) continue;
        const double l = lower_[sj];
        const double u = upper_[sj];
        if (u - l <= tol_) continue;  // fixed: never enters
        const double d = reduced_cost(j, repair_phase);
        double score = 0.0;
        int dir = 0;
        const bool free_column = l <= -kInf && u >= kInf;
        if (status_[sj] == VarStatus::kAtLower || free_column) {
          if (d < -tol_) {
            score = -d;
            dir = 1;
          } else if (free_column && d > tol_) {
            score = d;
            dir = -1;
          }
        } else if (status_[sj] == VarStatus::kAtUpper && d > tol_) {
          score = d;
          dir = -1;
        }
        if (dir == 0) continue;
        if (use_bland) {
          entering = j;
          direction = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          direction = dir;
        }
      }
      if (entering == -1) {
        // Phase-optimal: either proven infeasible (repair failed) or done.
        return repair_phase ? LpStatus::kInfeasible : LpStatus::kOptimal;
      }
      ++e_.stats_.pivots;  // an iteration that moves (bound flip or pivot)

      ftran(entering);

      // Ratio test. The entering column moves t >= 0 from its bound in
      // `direction`; basic i changes at rate g = -direction * alpha_i.
      // Feasible basics block at the bound they approach; infeasible basics
      // (repair phase) block at the bound they violate — where they become
      // feasible and leave the basis.
      const std::size_t se = static_cast<std::size_t>(entering);
      double max_step =
          (lower_[se] > -kInf && upper_[se] < kInf) ? upper_[se] - lower_[se]
                                                    : kInf;
      int leaving_row = -1;
      bool leaving_at_upper = false;
      for (int i = 0; i < m_; ++i) {
        const std::size_t si = static_cast<std::size_t>(i);
        const double g =
            -static_cast<double>(direction) * alpha_[si];
        if (std::abs(g) <= tol_) continue;
        const int col = basic_[si];
        const double value = beta_[si];
        const double l = lower_[static_cast<std::size_t>(col)];
        const double u = upper_[static_cast<std::size_t>(col)];
        double limit = kInf;
        bool at_upper = false;
        if (value < l - tol_) {
          // Infeasible below: blocks only while rising towards l.
          if (g > 0.0) {
            limit = (l - value) / g;
            at_upper = false;
          }
        } else if (value > u + tol_) {
          if (g < 0.0) {
            limit = (value - u) / (-g);
            at_upper = true;
          }
        } else if (g < 0.0 && l > -kInf) {
          limit = (value - l) / (-g);
          at_upper = false;
        } else if (g > 0.0 && u < kInf) {
          limit = (u - value) / g;
          at_upper = true;
        }
        if (limit >= kInf) continue;
        if (limit < max_step - tol_ ||
            (limit < max_step + tol_ && leaving_row == -1)) {
          max_step = std::max(limit, 0.0);
          leaving_row = i;
          leaving_at_upper = at_upper;
        }
      }

      if (max_step >= kInf) {
        // No blocking event: unbounded in phase 2. In the repair phase this
        // cannot happen for an improving direction (some violated basic
        // moves towards its bound and blocks); treat a numerical escape as
        // an iteration-limit failure rather than cycling forever.
        return repair_phase ? LpStatus::kIterationLimit
                            : LpStatus::kUnbounded;
      }

      if (best_score * max_step > tol_) {
        stall = 0;
      } else {
        ++stall;
      }

      if (leaving_row == -1) {
        // Bound flip: the entering column crosses its whole range.
        status_[se] =
            direction > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        continue;
      }

      // Pivot: entering replaces basic_[leaving_row]; product-form update
      // of the dense inverse.
      const int leaving_col = basic_[static_cast<std::size_t>(leaving_row)];
      status_[static_cast<std::size_t>(leaving_col)] =
          leaving_at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      basic_[static_cast<std::size_t>(leaving_row)] = entering;
      status_[se] = VarStatus::kBasic;

      const double pivot = alpha_[static_cast<std::size_t>(leaving_row)];
      if (std::abs(pivot) <= 1e-12) {
        // Numerically hopeless pivot: rebuild and retry from scratch state.
        if (!refactorize()) return LpStatus::kIterationLimit;
        continue;
      }
      double* pivot_row =
          &binv_[static_cast<std::size_t>(leaving_row) *
                 static_cast<std::size_t>(m_)];
      for (int k = 0; k < m_; ++k) pivot_row[k] /= pivot;
      for (int i = 0; i < m_; ++i) {
        if (i == leaving_row) continue;
        const double factor = alpha_[static_cast<std::size_t>(i)];
        if (factor == 0.0) continue;
        double* row =
            &binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(m_)];
        for (int k = 0; k < m_; ++k) row[k] -= factor * pivot_row[k];
      }
    }
    return LpStatus::kIterationLimit;
  }

  void extract(LpResult& result) {
    compute_beta();
    basic_row_.assign(static_cast<std::size_t>(cols_), -1);
    for (int i = 0; i < m_; ++i) {
      basic_row_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])] =
          i;
    }
    result.values.resize(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      const int row = basic_row_[static_cast<std::size_t>(j)];
      result.values[static_cast<std::size_t>(j)] =
          row >= 0 ? beta_[static_cast<std::size_t>(row)] : nonbasic_value(j);
    }
    double objective = e_.objective_constant_;
    for (int j = 0; j < n_; ++j) {
      const double c = e_.cost_[static_cast<std::size_t>(j)];
      if (c == 0.0) continue;
      objective +=
          e_.orientation_ * c * result.values[static_cast<std::size_t>(j)];
    }
    result.objective = objective;
    result.basis.status.assign(status_.begin(), status_.end());
    result.basis.basic.assign(basic_.begin(), basic_.end());
  }

  LpEngine& e_;
  int n_ = 0;
  int m_ = 0;
  int cols_ = 0;
  double tol_ = 1e-7;
  const Basis* warm_ = nullptr;

  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<VarStatus> status_;
  std::vector<int> basic_;
  std::vector<int> basic_row_;
  std::vector<double> binv_;
  std::vector<double> beta_;
  std::vector<double> effective_;
  std::vector<double> y_;
  std::vector<double> alpha_;
  std::vector<double> phase1_grad_;
  std::vector<double> work_;
  std::vector<double> scratch_;
  std::vector<int> row_entries_;
  std::vector<SparseEntry> row_single_;
  std::vector<double> act_min_;
  std::vector<double> act_max_;
};

LpResult LpEngine::solve(const std::vector<double>& lower,
                         const std::vector<double>& upper, const Basis* warm) {
  MFD_REQUIRE(lower.empty() ||
                  lower.size() == static_cast<std::size_t>(structural_),
              "LpEngine::solve(): lower override size mismatch");
  MFD_REQUIRE(upper.empty() ||
                  upper.size() == static_cast<std::size_t>(structural_),
              "LpEngine::solve(): upper override size mismatch");
  RevisedSolve solve(*this, lower, upper, warm);
  return solve.run();
}

}  // namespace mfd::ilp
