// Two-phase primal simplex with bounded variables.
//
// Solves the LP relaxations inside the branch-and-bound solver. Variables may
// carry finite lower/upper bounds (the common case here: 0-1 relaxations), so
// no extra rows are spent on bound constraints; nonbasic variables rest at
// either bound and the ratio test supports bound flips. The basis inverse is
// maintained densely with periodic refactorization, which is robust and more
// than fast enough for the few-hundred-variable models the DFT formulation
// produces.
#pragma once

#include <vector>

#include "common/run_control.hpp"
#include "ilp/model.hpp"

namespace mfd::ilp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// Objective in the model's own orientation (min or max).
  double objective = 0.0;
  /// One value per model variable (structural variables only).
  std::vector<double> values;
  int iterations = 0;
};

struct LpOptions {
  double tol = 1e-7;
  /// 0 = automatic (scales with problem size).
  int max_iterations = 0;
  /// Optional cooperative deadline/cancellation, polled every 64 pivots; a
  /// stop surfaces as kIterationLimit. Borrowed, may be null.
  const RunControl* control = nullptr;
};

/// Solves the continuous relaxation of `model`. When `lower`/`upper` are
/// non-empty they override the model's variable bounds (used by
/// branch-and-bound to impose branching decisions); they must then have one
/// entry per variable.
LpResult solve_lp(const Model& model, const std::vector<double>& lower = {},
                  const std::vector<double>& upper = {},
                  const LpOptions& options = {});

}  // namespace mfd::ilp
