// LP solving: sparse revised simplex with bounded variables (default) and
// the retained dense two-phase simplex (differential oracle).
//
// The default engine (revised_simplex.cpp) keeps the constraint matrix in
// column-major sparse form, prices and FTRANs against sparse columns, and
// maintains a dense basis inverse with periodic refactorization. It accepts
// a warm-start Basis so branch-and-bound nodes and lazy-cut re-solves resume
// from their parent's basis through a bounded-primal feasibility-repair
// phase instead of running phase 1 from scratch.
//
// The original dense two-phase simplex (simplex.cpp) is kept behind
// LpOptions::use_dense as a differential oracle: same semantics, no warm
// starts, every solve from scratch. Variables may carry finite lower/upper
// bounds in both engines (the common case here: 0-1 relaxations), so no
// extra rows are spent on bound constraints.
#pragma once

#include <vector>

#include "common/run_control.hpp"
#include "ilp/basis.hpp"
#include "ilp/model.hpp"

namespace mfd::ilp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  /// Objective in the model's own orientation (min or max).
  double objective = 0.0;
  /// One value per model variable (structural variables only).
  std::vector<double> values;
  int iterations = 0;
  /// Final basis (kOptimal solves on the revised engine only; empty
  /// otherwise). Feed it back through LpOptions::warm_start — or
  /// LpEngine::solve() — to resume a later compatible solve from here.
  Basis basis;
};

struct LpOptions {
  double tol = 1e-7;
  /// 0 = automatic (scales with problem size).
  int max_iterations = 0;
  /// Optional cooperative deadline/cancellation, polled every 64 pivots; a
  /// stop surfaces as kIterationLimit. Borrowed, may be null.
  const RunControl* control = nullptr;
  /// Optional basis to resume from (revised engine only; ignored by the
  /// dense oracle). Borrowed, may be null. A stale or singular basis is
  /// detected and the solve falls back to a cold start.
  const Basis* warm_start = nullptr;
  /// Route the solve through the retained dense two-phase simplex instead
  /// of the revised engine. Used as a differential oracle by the tests and
  /// exposed end-to-end via SolverOptions / PathPlanOptions.
  bool use_dense = false;
  /// Optional accumulator for engine statistics (pivots, refactorizations,
  /// warm-start and presolve counters). Borrowed, may be null.
  SolveStats* stats = nullptr;
};

/// Solves the continuous relaxation of `model`. When `lower`/`upper` are
/// non-empty they override the model's variable bounds (used by
/// branch-and-bound to impose branching decisions); they must then have one
/// entry per variable. Dispatches to the revised engine unless
/// options.use_dense is set.
LpResult solve_lp(const Model& model, const std::vector<double>& lower = {},
                  const std::vector<double>& upper = {},
                  const LpOptions& options = {});

/// The retained dense two-phase simplex, callable directly as an oracle.
LpResult solve_lp_dense(const Model& model,
                        const std::vector<double>& lower = {},
                        const std::vector<double>& upper = {},
                        const LpOptions& options = {});

}  // namespace mfd::ilp
