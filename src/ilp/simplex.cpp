#include "ilp/simplex.hpp"

#include "ilp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mfd::ilp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ColumnStatus : char { kBasic, kAtLower, kAtUpper };

// Dense tableau-free simplex working state. Columns are laid out as
// [structural | slacks | artificials]; all variables are shifted so their
// lower bound is zero and live in [0, range].
class SimplexSolver {
 public:
  SimplexSolver(const Model& model, const std::vector<double>& lower,
                const std::vector<double>& upper, const LpOptions& options)
      : options_(options) {
    build(model, lower, upper);
  }

  LpResult solve(const Model& model) {
    LpResult result;
    if (infeasible_bounds_) {
      result.status = LpStatus::kInfeasible;
      return result;
    }

    // Phase 1: minimize the sum of artificials from the all-artificial basis.
    std::vector<double> phase1_cost(num_columns(), 0.0);
    for (int j = artificial_begin_; j < num_columns(); ++j) {
      phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    }
    const LpStatus phase1 = optimize(phase1_cost);
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iterations_;
      return result;
    }
    if (objective_value(phase1_cost) > 1e-6) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      return result;
    }

    // Fix artificials at zero for phase 2.
    for (int j = artificial_begin_; j < num_columns(); ++j) {
      range_[static_cast<std::size_t>(j)] = 0.0;
      if (status_[static_cast<std::size_t>(j)] == ColumnStatus::kAtUpper) {
        status_[static_cast<std::size_t>(j)] = ColumnStatus::kAtLower;
      }
    }

    const LpStatus phase2 = optimize(cost_);
    result.iterations = iterations_;
    if (phase2 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    if (phase2 == LpStatus::kUnbounded) {
      result.status = LpStatus::kUnbounded;
      return result;
    }

    result.status = LpStatus::kOptimal;
    result.values = extract_values(model);
    double objective = model.objective().constant();
    for (const LinearTerm& t : model.objective().terms()) {
      objective += t.coeff * result.values[static_cast<std::size_t>(t.var)];
    }
    result.objective = objective;
    return result;
  }

 private:
  [[nodiscard]] int num_columns() const {
    return static_cast<int>(cost_.size());
  }

  double& a(int row, int col) {
    return matrix_[static_cast<std::size_t>(row) *
                       static_cast<std::size_t>(num_columns_cached_) +
                   static_cast<std::size_t>(col)];
  }
  [[nodiscard]] double a(int row, int col) const {
    return matrix_[static_cast<std::size_t>(row) *
                       static_cast<std::size_t>(num_columns_cached_) +
                   static_cast<std::size_t>(col)];
  }

  void build(const Model& model, const std::vector<double>& lower_override,
             const std::vector<double>& upper_override) {
    const int n = model.variable_count();
    rows_ = model.constraint_count();
    const double sign = model.minimize() ? 1.0 : -1.0;

    shift_.assign(static_cast<std::size_t>(n), 0.0);
    std::vector<double> lower(static_cast<std::size_t>(n));
    std::vector<double> upper(static_cast<std::size_t>(n));
    for (VarId v = 0; v < n; ++v) {
      const Variable& var = model.variable(v);
      lower[static_cast<std::size_t>(v)] =
          lower_override.empty() ? var.lower
                                 : lower_override[static_cast<std::size_t>(v)];
      upper[static_cast<std::size_t>(v)] =
          upper_override.empty() ? var.upper
                                 : upper_override[static_cast<std::size_t>(v)];
      if (lower[static_cast<std::size_t>(v)] >
          upper[static_cast<std::size_t>(v)] + options_.tol) {
        infeasible_bounds_ = true;
        return;
      }
    }

    // Column layout: n structural, then one slack per inequality row, then
    // one artificial per row.
    int slack_count = 0;
    for (const Constraint& c : model.constraints()) {
      if (c.sense != Sense::kEqual) ++slack_count;
    }
    slack_begin_ = n;
    artificial_begin_ = n + slack_count;
    const int total = artificial_begin_ + rows_;
    num_columns_cached_ = total;

    matrix_.assign(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(total),
        0.0);
    cost_.assign(static_cast<std::size_t>(total), 0.0);
    range_.assign(static_cast<std::size_t>(total), kInf);
    rhs_.assign(static_cast<std::size_t>(rows_), 0.0);

    for (VarId v = 0; v < n; ++v) {
      shift_[static_cast<std::size_t>(v)] = lower[static_cast<std::size_t>(v)];
      range_[static_cast<std::size_t>(v)] =
          upper[static_cast<std::size_t>(v)] -
          lower[static_cast<std::size_t>(v)];
    }
    for (const LinearTerm& t : model.objective().terms()) {
      cost_[static_cast<std::size_t>(t.var)] += sign * t.coeff;
    }

    int slack = slack_begin_;
    for (int i = 0; i < rows_; ++i) {
      const Constraint& c =
          model.constraints()[static_cast<std::size_t>(i)];
      double rhs = c.rhs;
      for (const LinearTerm& t : c.expr.terms()) {
        a(i, t.var) += t.coeff;
        rhs -= t.coeff * shift_[static_cast<std::size_t>(t.var)];
      }
      if (c.sense == Sense::kLessEqual) {
        a(i, slack) = 1.0;
        ++slack;
      } else if (c.sense == Sense::kGreaterEqual) {
        a(i, slack) = -1.0;
        ++slack;
      }
      rhs_[static_cast<std::size_t>(i)] = rhs;
    }

    // Normalize rows to non-negative rhs, then install artificials as the
    // initial basis.
    for (int i = 0; i < rows_; ++i) {
      if (rhs_[static_cast<std::size_t>(i)] < 0.0) {
        rhs_[static_cast<std::size_t>(i)] = -rhs_[static_cast<std::size_t>(i)];
        for (int j = 0; j < artificial_begin_; ++j) a(i, j) = -a(i, j);
      }
      a(i, artificial_begin_ + i) = 1.0;
    }

    status_.assign(static_cast<std::size_t>(total), ColumnStatus::kAtLower);
    basis_.resize(static_cast<std::size_t>(rows_));
    for (int i = 0; i < rows_; ++i) {
      basis_[static_cast<std::size_t>(i)] = artificial_begin_ + i;
      status_[static_cast<std::size_t>(artificial_begin_ + i)] =
          ColumnStatus::kBasic;
    }
    binv_.assign(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(rows_),
        0.0);
    for (int i = 0; i < rows_; ++i) {
      binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(rows_) +
            static_cast<std::size_t>(i)] = 1.0;
    }
  }

  [[nodiscard]] double binv(int i, int j) const {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(j)];
  }
  double& binv(int i, int j) {
    return binv_[static_cast<std::size_t>(i) * static_cast<std::size_t>(rows_) +
                 static_cast<std::size_t>(j)];
  }

  // Current value of column j (shifted space).
  [[nodiscard]] double column_value(int j,
                                    const std::vector<double>& beta) const {
    switch (status_[static_cast<std::size_t>(j)]) {
      case ColumnStatus::kAtLower:
        return 0.0;
      case ColumnStatus::kAtUpper:
        return range_[static_cast<std::size_t>(j)];
      case ColumnStatus::kBasic:
        for (int i = 0; i < rows_; ++i) {
          if (basis_[static_cast<std::size_t>(i)] == j) {
            return beta[static_cast<std::size_t>(i)];
          }
        }
        MFD_ASSERT(false, "basic column missing from basis");
    }
    return 0.0;
  }

  // beta = B^-1 * (rhs - sum of at-upper columns at their ranges).
  [[nodiscard]] std::vector<double> basic_values() const {
    std::vector<double> effective = rhs_;
    for (int j = 0; j < num_columns(); ++j) {
      if (status_[static_cast<std::size_t>(j)] != ColumnStatus::kAtUpper) {
        continue;
      }
      const double value = range_[static_cast<std::size_t>(j)];
      if (value == 0.0) continue;
      for (int i = 0; i < rows_; ++i) {
        effective[static_cast<std::size_t>(i)] -= a(i, j) * value;
      }
    }
    std::vector<double> beta(static_cast<std::size_t>(rows_), 0.0);
    for (int i = 0; i < rows_; ++i) {
      double sum = 0.0;
      for (int k = 0; k < rows_; ++k) {
        sum += binv(i, k) * effective[static_cast<std::size_t>(k)];
      }
      beta[static_cast<std::size_t>(i)] = sum;
    }
    return beta;
  }

  [[nodiscard]] double objective_value(
      const std::vector<double>& cost) const {
    const std::vector<double> beta = basic_values();
    double total = 0.0;
    for (int j = 0; j < num_columns(); ++j) {
      const double c = cost[static_cast<std::size_t>(j)];
      if (c == 0.0) continue;
      total += c * column_value(j, beta);
    }
    return total;
  }

  void refactorize() {
    // Rebuild B^-1 from the basis columns via Gauss-Jordan with partial
    // pivoting.
    std::vector<double> work(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(rows_),
        0.0);
    for (int i = 0; i < rows_; ++i) {
      const int col = basis_[static_cast<std::size_t>(i)];
      for (int r = 0; r < rows_; ++r) {
        work[static_cast<std::size_t>(r) * static_cast<std::size_t>(rows_) +
             static_cast<std::size_t>(i)] = a(r, col);
      }
    }
    std::vector<double> inverse(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(rows_),
        0.0);
    for (int i = 0; i < rows_; ++i) {
      inverse[static_cast<std::size_t>(i) * static_cast<std::size_t>(rows_) +
              static_cast<std::size_t>(i)] = 1.0;
    }
    auto w = [&](int r, int c) -> double& {
      return work[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(rows_) +
                  static_cast<std::size_t>(c)];
    };
    auto inv = [&](int r, int c) -> double& {
      return inverse[static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(rows_) +
                     static_cast<std::size_t>(c)];
    };
    for (int col = 0; col < rows_; ++col) {
      int pivot = col;
      for (int r = col + 1; r < rows_; ++r) {
        if (std::abs(w(r, col)) > std::abs(w(pivot, col))) pivot = r;
      }
      MFD_ASSERT(std::abs(w(pivot, col)) > 1e-12,
                 "simplex refactorization: singular basis");
      if (pivot != col) {
        for (int c = 0; c < rows_; ++c) {
          std::swap(w(pivot, c), w(col, c));
          std::swap(inv(pivot, c), inv(col, c));
        }
      }
      const double diag = w(col, col);
      for (int c = 0; c < rows_; ++c) {
        w(col, c) /= diag;
        inv(col, c) /= diag;
      }
      for (int r = 0; r < rows_; ++r) {
        if (r == col) continue;
        const double factor = w(r, col);
        if (factor == 0.0) continue;
        for (int c = 0; c < rows_; ++c) {
          w(r, c) -= factor * w(col, c);
          inv(r, c) -= factor * inv(col, c);
        }
      }
    }
    binv_ = std::move(inverse);
  }

  LpStatus optimize(const std::vector<double>& cost) {
    const int total = num_columns();
    const int iteration_limit =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 200 * (rows_ + total) + 2000;
    const int bland_threshold = 10 * (rows_ + total) + 200;
    int stall = 0;

    for (int local_iter = 0; local_iter < iteration_limit; ++local_iter) {
      ++iterations_;
      if ((local_iter & 63) == 0 && stop_requested(options_.control)) {
        return LpStatus::kIterationLimit;
      }
      if ((local_iter & 63) == 63) refactorize();

      const std::vector<double> beta = basic_values();

      // Pricing: y = c_B B^-1, d_j = c_j - y a_j.
      std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
      for (int i = 0; i < rows_; ++i) {
        const double cb =
            cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
        if (cb == 0.0) continue;
        for (int k = 0; k < rows_; ++k) {
          y[static_cast<std::size_t>(k)] += cb * binv(i, k);
        }
      }

      const bool use_bland = stall > bland_threshold;
      // Reduced costs for all columns in one row-major sweep (cache friendly).
      reduced_.assign(cost.begin(), cost.end());
      for (int i = 0; i < rows_; ++i) {
        const double yi = y[static_cast<std::size_t>(i)];
        if (yi == 0.0) continue;
        const double* row = &matrix_[static_cast<std::size_t>(i) *
                                     static_cast<std::size_t>(total)];
        for (int j = 0; j < total; ++j) {
          reduced_[static_cast<std::size_t>(j)] -= yi * row[j];
        }
      }
      int entering = -1;
      double best_score = options_.tol;
      int direction = 0;  // +1 entering rises from lower, -1 falls from upper
      for (int j = 0; j < total; ++j) {
        const ColumnStatus st = status_[static_cast<std::size_t>(j)];
        if (st == ColumnStatus::kBasic) continue;
        if (range_[static_cast<std::size_t>(j)] < options_.tol) continue;
        const double d = reduced_[static_cast<std::size_t>(j)];
        double score = 0.0;
        int dir = 0;
        if (st == ColumnStatus::kAtLower && d < -options_.tol) {
          score = -d;
          dir = 1;
        } else if (st == ColumnStatus::kAtUpper && d > options_.tol) {
          score = d;
          dir = -1;
        } else {
          continue;
        }
        if (use_bland) {
          entering = j;
          direction = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          direction = dir;
        }
      }
      if (entering == -1) return LpStatus::kOptimal;

      // Direction through the basis: alpha = B^-1 a_e.
      std::vector<double> column(static_cast<std::size_t>(rows_));
      for (int k = 0; k < rows_; ++k) {
        column[static_cast<std::size_t>(k)] = a(k, entering);
      }
      std::vector<double> alpha(static_cast<std::size_t>(rows_), 0.0);
      for (int i = 0; i < rows_; ++i) {
        double sum = 0.0;
        const double* binv_row =
            &binv_[static_cast<std::size_t>(i) *
                   static_cast<std::size_t>(rows_)];
        for (int k = 0; k < rows_; ++k) {
          sum += binv_row[k] * column[static_cast<std::size_t>(k)];
        }
        alpha[static_cast<std::size_t>(i)] = sum;
      }

      // Ratio test. Basic i moves by -direction*alpha_i per unit step.
      double max_step = range_[static_cast<std::size_t>(entering)];
      int leaving_row = -1;
      bool leaving_at_upper = false;
      for (int i = 0; i < rows_; ++i) {
        const double delta =
            static_cast<double>(direction) * alpha[static_cast<std::size_t>(i)];
        const int basic_col = basis_[static_cast<std::size_t>(i)];
        const double basic_range = range_[static_cast<std::size_t>(basic_col)];
        double limit = kInf;
        bool at_upper = false;
        if (delta > options_.tol) {
          limit = beta[static_cast<std::size_t>(i)] / delta;
          at_upper = false;
        } else if (delta < -options_.tol && basic_range < kInf) {
          limit = (basic_range - beta[static_cast<std::size_t>(i)]) / (-delta);
          at_upper = true;
        } else {
          continue;
        }
        if (limit < max_step - options_.tol ||
            (limit < max_step + options_.tol && leaving_row == -1)) {
          max_step = std::max(limit, 0.0);
          leaving_row = i;
          leaving_at_upper = at_upper;
        }
      }

      if (max_step == kInf) return LpStatus::kUnbounded;

      // Objective improves by |reduced cost| * step; track stalls cheaply
      // instead of recomputing the objective.
      if (best_score * max_step > options_.tol) {
        stall = 0;
      } else {
        ++stall;
      }

      if (leaving_row == -1) {
        // Bound flip: entering travels its whole range.
        status_[static_cast<std::size_t>(entering)] =
            direction > 0 ? ColumnStatus::kAtUpper : ColumnStatus::kAtLower;
        continue;
      }

      // Pivot: entering replaces basis_[leaving_row].
      const int leaving_col = basis_[static_cast<std::size_t>(leaving_row)];
      status_[static_cast<std::size_t>(leaving_col)] =
          leaving_at_upper ? ColumnStatus::kAtUpper : ColumnStatus::kAtLower;
      basis_[static_cast<std::size_t>(leaving_row)] = entering;
      status_[static_cast<std::size_t>(entering)] = ColumnStatus::kBasic;

      const double pivot = alpha[static_cast<std::size_t>(leaving_row)];
      MFD_ASSERT(std::abs(pivot) > 1e-12, "simplex pivot too small");
      for (int k = 0; k < rows_; ++k) binv(leaving_row, k) /= pivot;
      for (int i = 0; i < rows_; ++i) {
        if (i == leaving_row) continue;
        const double factor = alpha[static_cast<std::size_t>(i)];
        if (factor == 0.0) continue;
        for (int k = 0; k < rows_; ++k) {
          binv(i, k) -= factor * binv(leaving_row, k);
        }
      }
    }
    return LpStatus::kIterationLimit;
  }

  std::vector<double> extract_values(const Model& model) const {
    const std::vector<double> beta = basic_values();
    std::vector<double> values(
        static_cast<std::size_t>(model.variable_count()), 0.0);
    for (VarId v = 0; v < model.variable_count(); ++v) {
      values[static_cast<std::size_t>(v)] =
          column_value(v, beta) + shift_[static_cast<std::size_t>(v)];
    }
    return values;
  }

  LpOptions options_;
  bool infeasible_bounds_ = false;
  int rows_ = 0;
  int slack_begin_ = 0;
  int artificial_begin_ = 0;
  int num_columns_cached_ = 0;
  int iterations_ = 0;

  std::vector<double> reduced_;  // scratch: reduced costs per column
  std::vector<double> matrix_;   // rows_ x num_columns, row-major
  std::vector<double> cost_;    // phase-2 costs (sign-adjusted)
  std::vector<double> range_;   // upper - lower per column (shifted space)
  std::vector<double> rhs_;
  std::vector<double> shift_;   // lower bound per structural variable
  std::vector<int> basis_;
  std::vector<ColumnStatus> status_;
  std::vector<double> binv_;
};

}  // namespace

LpResult solve_lp_dense(const Model& model, const std::vector<double>& lower,
                        const std::vector<double>& upper,
                        const LpOptions& options) {
  MFD_REQUIRE(lower.empty() ||
                  lower.size() ==
                      static_cast<std::size_t>(model.variable_count()),
              "solve_lp(): lower override size mismatch");
  MFD_REQUIRE(upper.empty() ||
                  upper.size() ==
                      static_cast<std::size_t>(model.variable_count()),
              "solve_lp(): upper override size mismatch");
  SimplexSolver solver(model, lower, upper, options);
  return solver.solve(model);
}

LpResult solve_lp(const Model& model, const std::vector<double>& lower,
                  const std::vector<double>& upper, const LpOptions& options) {
  if (options.use_dense) return solve_lp_dense(model, lower, upper, options);
  LpEngine engine(model, options);
  LpResult result = engine.solve(lower, upper, options.warm_start);
  if (options.stats != nullptr) *options.stats += engine.stats();
  return result;
}

}  // namespace mfd::ilp
