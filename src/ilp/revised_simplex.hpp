// Incremental LP engine: sparse revised simplex with bounded variables.
//
// An LpEngine is built once from a Model and then *mutated* between solves —
// appending lazy-cut rows, adjusting bounds per solve — so the iterative
// searches above it (branch-and-bound nodes, loop-elimination rounds, the
// path-ILP's lexicographic stages) re-solve nearly identical LPs without
// rebuilding anything. Each solve may resume from a prior Basis: the engine
// refactorizes the basis inverse from the sparse basis columns, repairs any
// bound violations the new cuts/bounds introduced with a composite phase-1
// (primal simplex on the sum of infeasibilities — the "bounded primal with
// a repair phase" alternative to dual simplex), then finishes with the
// ordinary bounded primal. A cold solve is the same loop started from the
// all-slack basis.
//
// Representation: every row is an equality a·x + s = b with one slack s per
// row whose bounds encode the sense (<=: s in [0,inf); =: s = 0;
// >=: s in (-inf,0]). Columns are [structural | slacks]; the structural part
// lives in a SparseColumns (per-column nonzero lists), slack columns are
// implicit unit vectors. The basis inverse is dense (m x m) with
// product-form pivot updates and periodic refactorization — robust and
// fast for the few-hundred-row models the DFT formulation produces; the
// sparsity win is in pricing and FTRAN, which walk column nonzero lists
// instead of dense rows.
#pragma once

#include <vector>

#include "ilp/simplex.hpp"
#include "ilp/sparse.hpp"

namespace mfd::ilp {

class LpEngine {
 public:
  /// Builds the sparse representation of `model`. The model reference is
  /// not retained; later cuts are added through add_constraint().
  explicit LpEngine(const Model& model, const LpOptions& options = {});

  [[nodiscard]] int structural_count() const { return structural_; }
  [[nodiscard]] int row_count() const { return rows_; }
  /// Columns = structural + one slack per row.
  [[nodiscard]] int column_count() const { return structural_ + rows_; }

  /// Appends one constraint row (a lazy cut). Bases snapshotted before the
  /// append remain usable: solve() extends them with the new row's slack.
  void add_constraint(const Constraint& constraint);

  /// Replaces the objective (used by the path ILP's lexicographic second
  /// stage). The expression must reference existing variables; `minimize`
  /// matches Model::set_objective semantics.
  void set_objective(const LinearExpr& objective, bool minimize);

  /// Solves with the given bound overrides (empty = the model's bounds; one
  /// entry per structural variable otherwise) resuming from `warm` when
  /// non-null. The result's basis field holds the final basis on kOptimal.
  LpResult solve(const std::vector<double>& lower = {},
                 const std::vector<double>& upper = {},
                 const Basis* warm = nullptr);

  [[nodiscard]] const SolveStats& stats() const { return stats_; }
  SolveStats& stats() { return stats_; }

 private:
  friend class RevisedSolve;

  LpOptions options_;
  int structural_ = 0;
  int rows_ = 0;
  SparseColumns matrix_;            // structural columns only
  std::vector<double> rhs_;         // one per row
  std::vector<double> slack_lower_; // slack bounds encode the row sense
  std::vector<double> slack_upper_;
  std::vector<double> base_lower_;  // model bounds per structural variable
  std::vector<double> base_upper_;
  std::vector<double> cost_;        // minimize-oriented structural costs
  double objective_constant_ = 0.0;
  double orientation_ = 1.0;        // +1 minimize, -1 maximize
  SolveStats stats_;
};

}  // namespace mfd::ilp
