// Simplex basis snapshots and engine statistics.
//
// A Basis captures the state of a revised-simplex solve — which column sits
// in each basis row and where every nonbasic column rests — so a later solve
// of a *compatible* model (same structural columns, possibly more rows from
// lazy cuts) can resume from it instead of starting phase 1 from scratch.
// Branch-and-bound nodes snapshot their parent's basis, and the path-ILP
// layer carries a basis across its lexicographic re-solves.
#pragma once

#include <cstdint>
#include <vector>

namespace mfd::ilp {

/// Where a column rests relative to the current basis.
enum class VarStatus : char { kBasic, kAtLower, kAtUpper };

/// A resumable simplex state over the engine's column space (structural
/// variables first, then one slack per row). A basis taken before rows were
/// appended stays usable: the engine extends it with the new rows' slacks.
struct Basis {
  /// One entry per column known at snapshot time.
  std::vector<VarStatus> status;
  /// Column id occupying each basis row.
  std::vector<int> basic;

  /// A snapshot from a zero-row model has no basic entries but still
  /// carries resumable column statuses, so emptiness keys on `status`.
  [[nodiscard]] bool empty() const { return status.empty(); }
};

/// Counters accumulated by the revised-simplex engine across solves. The
/// branch-and-bound solver aggregates them per solve_ilp() call and surfaces
/// them through the Tracer counters (see solver.cpp).
struct SolveStats {
  std::int64_t pivots = 0;
  std::int64_t refactorizations = 0;
  /// Solves that received a warm-start basis / that adopted it successfully.
  std::int64_t warm_start_attempts = 0;
  std::int64_t warm_start_hits = 0;
  /// Presolve reductions observed across solves.
  std::int64_t presolve_fixed_columns = 0;
  std::int64_t presolve_redundant_rows = 0;
  std::int64_t presolve_bound_tightenings = 0;
  /// LP solves run, and how many needed a feasibility-repair phase.
  std::int64_t lp_solves = 0;
  std::int64_t repair_phases = 0;

  SolveStats& operator+=(const SolveStats& other) {
    pivots += other.pivots;
    refactorizations += other.refactorizations;
    warm_start_attempts += other.warm_start_attempts;
    warm_start_hits += other.warm_start_hits;
    presolve_fixed_columns += other.presolve_fixed_columns;
    presolve_redundant_rows += other.presolve_redundant_rows;
    presolve_bound_tightenings += other.presolve_bound_tightenings;
    lp_solves += other.lp_solves;
    repair_phases += other.repair_phases;
    return *this;
  }
};

}  // namespace mfd::ilp
